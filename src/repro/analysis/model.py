"""Explicit-state bounded model checker for the buffer hardware.

Exhaustively explores every arrival × grant × departure interleaving of
the paper's four buffer architectures at small parameters, in lockstep
with the reference specifications of :mod:`repro.analysis.properties`.
Two transition systems are provided:

* :class:`BufferSystem` — one buffer, atomic arrive/depart/retire
  actions.  This is the finest interleaving model: any pop ordering the
  hardware could exhibit is some path here.
* :class:`SwitchSystem` — one n×n switch, whole-cycle actions (a grant
  set followed by per-input arrivals, matching the Markov cycle model of
  :mod:`repro.markov.models`).  Grant nondeterminism is *adversarial*:
  every crossbar-legal grant set (including non-maximal ones and the
  empty set) is explored, which over-approximates the behaviour of any
  arbiter fairness state.  Separately, the real
  :class:`~repro.switch.arbiter.CrossbarArbiter` is checked in every
  explored state, for every priority-pointer value and both fairness
  schemes: its grants must be crossbar-legal, serve actual head packets,
  be *maximal* (work conservation) and leave buffer state untouched.

Soundness of the state canonicalization:

* Packet ids are renumbered canonically after every transition.  Ids
  never influence buffer behaviour (they are only identity-checked), so
  relabeling is a bisimulation.
* In the default ``collapse`` layout mode, DAMQ states are keyed on list
  *contents* (plus retirement), quotienting away the physical slot
  threading.  Every ``SlotListManager`` operation is symmetric under
  slot renaming (allocation always takes the free-list head, wherever it
  physically is), so states equal up to renaming have isomorphic
  futures.  ``exact`` layout mode keys on the full register file instead
  and explores every reachable physical threading — the stronger check,
  used by default for single-buffer verification where it stays small.

Refinement properties (the paper's architectural claims):

* :func:`verify_fifo_refinement` — a DAMQ buffer restricted to one queue
  is observationally equivalent to a FIFO buffer, state by state along
  every interleaving.
* :func:`verify_dominance` — a DAMQ buffer never rejects a packet that a
  SAMQ/SAFC buffer with the same total slots accepts, along every
  partitioned-accepted workload; strict-dominance witnesses (states
  where only DAMQ accepts) are counted.

The checker is itself verified by :func:`run_self_test`, which plants
known bugs (free-list off-by-one, dropped tail-pointer update, double
grant, FIFO reorder, occupancy leak) via targeted monkeypatching and
asserts each one is caught.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Any, Callable, Hashable

from repro.analysis.counterexample import Counterexample
from repro.analysis.explore import Action, explore
from repro.analysis.properties import (
    PropertyViolation,
    SpecBuffer,
    Violation,
    check_conformance,
    check_pointer_ram,
    make_spec,
)
from repro.core.buffer import SwitchBuffer
from repro.core.damq import DamqBuffer
from repro.core.fifo import FifoBuffer
from repro.core.linkedlist import NO_SLOT, SlotListManager
from repro.core.packet import Packet
from repro.core.registry import make_buffer
from repro.core.samq import SamqBuffer
from repro.errors import (
    BufferEmptyError,
    BufferFullError,
    ConfigurationError,
    FaultError,
    InvariantError,
    ReproError,
    SimulationError,
)
from repro.switch.arbiter import CrossbarArbiter

__all__ = [
    "BufferSystem",
    "CrossValidation",
    "ModelCheckResult",
    "MutationResult",
    "MUTATIONS",
    "StarvationSystem",
    "SwitchSystem",
    "build_system",
    "cross_validate",
    "run_self_test",
    "verify_buffer",
    "verify_dominance",
    "verify_fifo_refinement",
    "verify_starvation",
    "verify_switch",
]


def _packet(packet_id: int, destination: int) -> Packet:
    return Packet(packet_id=packet_id, source=0, destination=destination)


def _raise(
    prop: str,
    message: str,
    kind: str,
    action: Action | None = None,
) -> PropertyViolation:
    return PropertyViolation(
        Violation(prop=prop, message=message, kind=kind), action
    )


# ----------------------------------------------------------------------
# Single-buffer transition system
# ----------------------------------------------------------------------


class BufferSystem:
    """All arrive/depart/retire interleavings of one buffer."""

    name = "buffer"

    def __init__(
        self,
        kind: str,
        capacity: int,
        num_outputs: int,
        *,
        protocol: str = "discarding",
        with_retirement: bool = True,
        exact_layout: bool = True,
    ) -> None:
        if protocol not in ("discarding", "blocking"):
            raise ConfigurationError(f"unknown protocol {protocol!r}")
        self.kind = kind.upper()
        self.capacity = capacity
        self.num_outputs = num_outputs
        self.protocol = protocol
        self.with_retirement = with_retirement
        self.exact_layout = exact_layout
        # Scratch instance, re-restored from snapshots per action.
        self._scratch = make_buffer(self.kind, capacity, num_outputs)

    def config(self) -> dict[str, Any]:
        return {
            "system": self.name,
            "kind": self.kind,
            "capacity": self.capacity,
            "num_outputs": self.num_outputs,
            "protocol": self.protocol,
            "with_retirement": self.with_retirement,
            "exact_layout": self.exact_layout,
        }

    # -- engine interface ----------------------------------------------

    def initial(self) -> tuple[Hashable, Any]:
        buffer = make_buffer(self.kind, self.capacity, self.num_outputs)
        spec = make_spec(self.kind, self.capacity, self.num_outputs)
        if buffer.max_reads_per_cycle != spec.max_serves:
            raise _raise(
                "read-ports",
                f"implementation advertises {buffer.max_reads_per_cycle} "
                f"read ports, specification expects {spec.max_serves}",
                self.kind,
            )
        return self._pack(buffer, spec)

    def successors(
        self, payload: Any
    ) -> Iterator[tuple[Action, Hashable, Any]]:
        self.probe(payload)
        for action in self.enumerate_actions(payload):
            yield (action, *self.apply(payload, action))

    # -- action enumeration --------------------------------------------

    def enumerate_actions(self, payload: Any) -> list[Action]:
        _, spec = payload
        actions: list[Action] = []
        for destination in range(self.num_outputs):
            if spec.can_accept(destination):
                actions.append(("arrive", destination))
            if spec.peek(destination) is not None:
                actions.append(("depart", destination))
        if self.with_retirement and spec.can_retire():
            actions.append(("retire",))
        return actions

    def probe(self, payload: Any) -> None:
        """Negative conformance checks that do not change state.

        A rejected push must raise :class:`BufferFullError` and leave no
        partial mutation behind; a pop from an empty queue must raise
        :class:`BufferEmptyError`; an impossible retirement must raise
        :class:`FaultError`.  All three are verified against pristine
        restores, so a dirty failure path cannot hide.
        """
        _, spec = payload
        for destination in range(self.num_outputs):
            if not spec.can_accept(destination):
                self._probe_one(payload, ("arrive", destination))
            if spec.peek(destination) is None:
                self._probe_one(payload, ("depart", destination))
        if self.with_retirement and not spec.can_retire():
            self._probe_one(payload, ("retire",))

    def _is_probe_action(self, spec: SpecBuffer, action: Action) -> bool:
        """Whether ``action`` is a negative-probe marker in this state."""
        name = action[0]
        if name == "arrive":
            return not spec.can_accept(int(action[1]))
        if name == "depart":
            return spec.peek(int(action[1])) is None
        if name == "retire":
            return not spec.can_retire()
        return False

    def _probe_one(self, payload: Any, action: Action) -> None:
        snapshot, spec = payload
        name = action[0]
        buffer = self._restore(snapshot)
        if name == "arrive":
            destination = int(action[1])
            if buffer.can_accept(destination):
                raise _raise(
                    "acceptance",
                    f"buffer accepts for output {destination} in a "
                    f"state the specification rejects",
                    self.kind,
                    action,
                )
            try:
                buffer.push(
                    _packet(spec.fresh_id(), destination), destination
                )
            except BufferFullError:
                pass
            except ReproError as error:
                raise _raise(
                    "wrong-error",
                    f"rejected push raised {type(error).__name__} "
                    f"instead of BufferFullError",
                    self.kind,
                    action,
                ) from error
            else:
                raise _raise(
                    "missing-reject",
                    f"push to full output {destination} did not raise",
                    self.kind,
                    action,
                )
            if buffer.snapshot_state() != snapshot:
                raise _raise(
                    "partial-mutation",
                    f"rejected push for output {destination} mutated "
                    f"buffer state",
                    self.kind,
                    action,
                )
        elif name == "depart":
            destination = int(action[1])
            head = buffer.peek(destination)
            if head is not None:
                raise _raise(
                    "phantom-head",
                    f"buffer offers packet {head.packet_id} for output "
                    f"{destination}, specification offers none",
                    self.kind,
                    action,
                )
            try:
                buffer.pop(destination)
            except BufferEmptyError:
                pass
            except ReproError as error:
                raise _raise(
                    "wrong-error",
                    f"empty pop raised {type(error).__name__} instead "
                    f"of BufferEmptyError",
                    self.kind,
                    action,
                ) from error
            else:
                raise _raise(
                    "pop-from-empty",
                    f"pop({destination}) succeeded on an empty queue",
                    self.kind,
                    action,
                )
            if buffer.snapshot_state() != snapshot:
                raise _raise(
                    "partial-mutation",
                    f"failed pop for output {destination} mutated "
                    f"buffer state",
                    self.kind,
                    action,
                )
        elif name == "retire":
            try:
                buffer.retire_slot()
            except FaultError:
                pass
            except ReproError as error:
                raise _raise(
                    "wrong-error",
                    f"impossible retirement raised {type(error).__name__} "
                    f"instead of FaultError",
                    self.kind,
                    action,
                ) from error
            else:
                raise _raise(
                    "missing-retire-fault",
                    "retire_slot() succeeded with no spare free slot",
                    self.kind,
                    action,
                )
        else:
            raise ConfigurationError(f"unknown probe action {action!r}")

    def apply(self, payload: Any, action: Action) -> tuple[Hashable, Any]:
        snapshot, spec = payload
        name = action[0]
        if self._is_probe_action(spec, action):
            # A counterexample can end on a negative-probe marker (the
            # violation arose from a rejected operation's misbehaviour).
            # Re-run just that probe; the state does not change.
            self._probe_one(payload, action)
            buffer = self._restore(snapshot)
            key: Hashable = (
                buffer.canonical_state() if self.exact_layout else spec.key()
            )
            return key, payload
        buffer = self._restore(snapshot)
        successor = spec.copy()
        if name == "arrive":
            destination = int(action[1])
            if not buffer.can_accept(destination):
                raise _raise(
                    "acceptance",
                    f"buffer rejects for output {destination} in a state "
                    f"the specification accepts",
                    self.kind,
                    action,
                )
            packet_id = successor.push(destination)
            try:
                buffer.push(_packet(packet_id, destination), destination)
            except ReproError as error:
                raise _raise(
                    "unexpected-reject",
                    f"push to output {destination} raised "
                    f"{type(error).__name__}: {error}",
                    self.kind,
                    action,
                ) from error
        elif name == "depart":
            destination = int(action[1])
            expected = successor.pop(destination)
            try:
                popped = buffer.pop(destination)
            except ReproError as error:
                raise _raise(
                    "unexpected-empty",
                    f"pop({destination}) raised {type(error).__name__} "
                    f"with a queued packet",
                    self.kind,
                    action,
                ) from error
            if popped.packet_id != expected:
                raise _raise(
                    "fifo-order",
                    f"pop({destination}) returned packet "
                    f"{popped.packet_id}, FIFO order requires {expected}",
                    self.kind,
                    action,
                )
        elif name == "retire":
            successor.retire()
            try:
                buffer.retire_slot()
            except ReproError as error:
                raise _raise(
                    "retire-fault",
                    f"retire_slot() raised {type(error).__name__} with a "
                    f"spare free slot: {error}",
                    self.kind,
                    action,
                ) from error
        else:
            raise ConfigurationError(f"unknown action {action!r}")
        self._check(buffer, successor, action)
        return self._pack(buffer, successor)

    # -- internals ------------------------------------------------------

    def _restore(self, snapshot: dict[str, Any]) -> SwitchBuffer:
        self._scratch.restore_state(snapshot)
        return self._scratch

    def _check(
        self, buffer: SwitchBuffer, spec: SpecBuffer, action: Action
    ) -> None:
        try:
            check_conformance(buffer, spec)
            if isinstance(buffer, DamqBuffer):
                check_pointer_ram(buffer._lists)
        except PropertyViolation as error:
            error.action = action
            raise

    def _pack(
        self, buffer: SwitchBuffer, spec: SpecBuffer
    ) -> tuple[Hashable, Any]:
        mapping = spec.renumber()
        for packet in buffer.packets():
            new_id = mapping.get(packet.packet_id)
            if new_id is None:
                raise _raise(
                    "phantom-packet",
                    f"buffer stores packet {packet.packet_id} the "
                    f"specification does not hold",
                    self.kind,
                )
            packet.packet_id = new_id
        key: Hashable = (
            buffer.canonical_state() if self.exact_layout else spec.key()
        )
        return key, (buffer.snapshot_state(), spec)


# ----------------------------------------------------------------------
# No-starvation transition system
# ----------------------------------------------------------------------


class StarvationSystem:
    """Every output below its slot quota must still be accepting.

    The liveness gap in plain DAMQ's dynamic sharing: one hot output can
    absorb the entire slot pool, after which arrivals for *every other*
    output are rejected even though those outputs hold nothing — the
    single-hot-output starvation the reserved-slot variant
    (arXiv 0910.1852) exists to cure.  Expressed as a safety property
    over reachable states: in no reachable state may an output holding
    fewer than ``quota`` packets have its arrivals rejected.  Plain DAMQ
    violates it within ``capacity`` steps (fill one queue, offer another
    output); :class:`~repro.arch.damq_reserved.DamqReservedBuffer` with
    ``reserved >= quota`` satisfies it exhaustively, and the statically
    partitioned architectures satisfy it trivially.

    Unlike :class:`BufferSystem` this system drives the implementation
    alone (no lockstep spec): the property quantifies over the
    implementation's own acceptance surface.
    """

    name = "starvation"

    def __init__(
        self,
        kind: str,
        capacity: int,
        num_outputs: int,
        *,
        quota: int | None = None,
    ) -> None:
        self.kind = kind.upper()
        self.capacity = capacity
        self.num_outputs = num_outputs
        probe = make_buffer(self.kind, capacity, num_outputs)
        # Default quota: the buffer's own reservation, where it has one.
        self.quota = quota if quota is not None else getattr(probe, "reserved", 1)
        if self.quota < 1:
            raise ConfigurationError(
                f"starvation quota must be at least 1, got {self.quota}"
            )
        # Scratch instance, re-restored from snapshots per action.
        self._scratch = make_buffer(self.kind, capacity, num_outputs)

    def config(self) -> dict[str, Any]:
        return {
            "system": self.name,
            "kind": self.kind,
            "capacity": self.capacity,
            "num_outputs": self.num_outputs,
            "quota": self.quota,
        }

    # -- engine interface ----------------------------------------------

    def initial(self) -> tuple[Hashable, Any]:
        buffer = make_buffer(self.kind, self.capacity, self.num_outputs)
        self._check_property(buffer, None)
        return self._key(buffer), buffer.snapshot_state()

    def successors(
        self, payload: Any
    ) -> Iterator[tuple[Action, Hashable, Any]]:
        self.probe(payload)
        for action in self.enumerate_actions(payload):
            yield (action, *self.apply(payload, action))

    def enumerate_actions(self, payload: Any) -> list[Action]:
        buffer = self._restore(payload)
        actions: list[Action] = []
        for destination in range(self.num_outputs):
            if buffer.can_accept(destination):
                actions.append(("arrive", destination))
            if buffer.peek(destination) is not None:
                actions.append(("depart", destination))
        return actions

    def probe(self, payload: Any) -> None:
        """Re-check the no-starvation property (pure, state unchanged)."""
        self._check_property(self._restore(payload), None)

    def apply(self, payload: Any, action: Action) -> tuple[Hashable, Any]:
        buffer = self._restore(payload)
        name = action[0]
        if name == "arrive":
            destination = int(action[1])
            # Fresh id above every resident packet: ids must be unique
            # among co-resident packets (the buffers' own invariants
            # count unique ids), and canonical_state() excludes them.
            next_id = 1 + max(
                (packet.packet_id for packet in buffer.packets()),
                default=-1,
            )
            try:
                buffer.push(_packet(next_id, destination), destination)
            except ReproError as error:
                raise _raise(
                    "unexpected-reject",
                    f"push to output {destination} raised "
                    f"{type(error).__name__}: {error}",
                    self.kind,
                    action,
                ) from error
        elif name == "depart":
            destination = int(action[1])
            try:
                buffer.pop(destination)
            except ReproError as error:
                raise _raise(
                    "unexpected-empty",
                    f"pop({destination}) raised {type(error).__name__} "
                    f"with a queued packet",
                    self.kind,
                    action,
                ) from error
        else:
            raise ConfigurationError(f"unknown action {action!r}")
        self._check_property(buffer, action)
        return self._key(buffer), buffer.snapshot_state()

    # -- internals ------------------------------------------------------

    def _key(self, buffer: SwitchBuffer) -> Hashable:
        # The property, the enabled actions and their effects all depend
        # only on the per-output queue lengths (size-1 packets, no
        # retirement actions), so states are quotiented on them: physical
        # slot threadings with equal lengths have isomorphic futures
        # (the same slot-renaming symmetry argument as collapse layout).
        return (
            buffer.kind,
            buffer.retired_count,
            tuple(buffer.queue_lengths()),
        )

    def _restore(self, snapshot: dict[str, Any]) -> SwitchBuffer:
        self._scratch.restore_state(snapshot)
        return self._scratch

    def _check_property(
        self, buffer: SwitchBuffer, action: Action | None
    ) -> None:
        for destination in range(self.num_outputs):
            held = buffer.queue_length(destination)
            if held < self.quota and not buffer.can_accept(destination):
                raise _raise(
                    "starvation",
                    f"output {destination} holds {held} packet(s), below "
                    f"its quota of {self.quota}, yet a new arrival is "
                    f"rejected (lengths "
                    f"{list(buffer.queue_lengths())}, occupancy "
                    f"{buffer.occupancy}/{buffer.effective_capacity})",
                    self.kind,
                    action,
                )
        try:
            buffer.check_invariants()
        except InvariantError as error:
            raise _raise("invariants", str(error), self.kind, action) from error


# ----------------------------------------------------------------------
# Whole-switch transition system
# ----------------------------------------------------------------------


class SwitchSystem:
    """One n×n switch: every grant × arrival interleaving per cycle.

    ``mode="safety"`` explores adversarial grants (every crossbar-legal
    grant set); ``mode="markov"`` restricts grants to the longest-queue
    arbitration policy of :mod:`repro.markov.arbitration` and weights
    each transition so the explored graph converts into the exact Markov
    chain (see :func:`cross_validate`).
    """

    name = "switch"

    def __init__(
        self,
        kind: str,
        num_ports: int,
        slots: int,
        *,
        protocol: str = "discarding",
        mode: str = "safety",
        exact_layout: bool = False,
        check_arbiter: bool = True,
    ) -> None:
        if mode not in ("safety", "markov"):
            raise ConfigurationError(f"unknown switch mode {mode!r}")
        if protocol not in ("discarding", "blocking"):
            raise ConfigurationError(f"unknown protocol {protocol!r}")
        if mode == "markov" and protocol != "discarding":
            raise ConfigurationError(
                "the Markov cross-validation models the discarding protocol"
            )
        if mode == "markov" and exact_layout:
            raise ConfigurationError(
                "markov mode aggregates over slot layouts; use collapse "
                "layout"
            )
        self.kind = kind.upper()
        self.num_ports = num_ports
        self.slots = slots
        self.protocol = protocol
        self.mode = mode
        self.exact_layout = exact_layout
        self.check_arbiter = check_arbiter
        self._scratch = [
            make_buffer(self.kind, slots, num_ports) for _ in range(num_ports)
        ]

    def config(self) -> dict[str, Any]:
        return {
            "system": self.name,
            "kind": self.kind,
            "num_ports": self.num_ports,
            "slots": self.slots,
            "protocol": self.protocol,
            "mode": self.mode,
            "exact_layout": self.exact_layout,
            "check_arbiter": self.check_arbiter,
        }

    # -- engine interface ----------------------------------------------

    def initial(self) -> tuple[Hashable, Any]:
        buffers = [
            make_buffer(self.kind, self.slots, self.num_ports)
            for _ in range(self.num_ports)
        ]
        specs = [
            make_spec(self.kind, self.slots, self.num_ports)
            for _ in range(self.num_ports)
        ]
        return self._pack(buffers, specs)

    def successors(
        self, payload: Any
    ) -> Iterator[tuple[Action, Hashable, Any]]:
        self.probe(payload)
        for action in self.enumerate_actions(payload):
            yield (action, *self.apply(payload, action))

    def enumerate_actions(self, payload: Any) -> list[Action]:
        _, specs = payload
        arrival_options: list[int | None] = [None] + list(
            range(self.num_ports)
        )
        actions: list[Action] = []
        for weight, served in self._service_outcomes(specs):
            for combo in product(arrival_options, repeat=self.num_ports):
                if (
                    self.mode == "safety"
                    and not served
                    and all(choice is None for choice in combo)
                ):
                    # Identity transition; nothing to verify or reach.
                    continue
                if weight is None:
                    actions.append(("cycle", served, combo))
                else:
                    actions.append(
                        (
                            "cycle",
                            served,
                            combo,
                            (weight.numerator, weight.denominator),
                        )
                    )
        return actions

    def probe(self, payload: Any) -> None:
        if self.check_arbiter:
            self._check_real_arbiter(payload)

    def apply(self, payload: Any, action: Action) -> tuple[Hashable, Any]:
        snapshots, specs = payload
        if action[0] == "arbitrate":
            # Probe marker: the violation came from the real-arbiter
            # conformance check in this state.  Re-run it; no transition.
            self._check_real_arbiter(payload)
            if self.exact_layout:
                key: Hashable = tuple(
                    buffer.canonical_state()
                    for buffer in self._restore(snapshots)
                )
            else:
                key = tuple(spec.key() for spec in specs)
            return key, payload
        if action[0] != "cycle":
            raise ConfigurationError(f"unknown action {action!r}")
        served: tuple[tuple[int, int], ...] = action[1]
        combo: tuple[int | None, ...] = action[2]
        buffers = self._restore(snapshots)
        successors = [spec.copy() for spec in specs]
        # Phase 1: transmissions (the granted pops).
        for input_port, output_port in served:
            expected = successors[input_port].pop(output_port)
            try:
                popped = buffers[input_port].pop(output_port)
            except ReproError as error:
                raise _raise(
                    "unexpected-empty",
                    f"input {input_port}: pop({output_port}) raised "
                    f"{type(error).__name__} for a granted packet",
                    self.kind,
                    action,
                ) from error
            if popped.packet_id != expected:
                raise _raise(
                    "fifo-order",
                    f"input {input_port}: pop({output_port}) returned "
                    f"packet {popped.packet_id}, FIFO order requires "
                    f"{expected}",
                    self.kind,
                    action,
                )
        # Phase 2: arrivals (discarding: a full buffer drops the packet).
        for input_port, destination in enumerate(combo):
            if destination is None:
                continue
            spec = successors[input_port]
            buffer = buffers[input_port]
            if buffer.can_accept(destination) != spec.can_accept(destination):
                raise _raise(
                    "acceptance",
                    f"input {input_port}: can_accept({destination}) "
                    f"diverges from the specification",
                    self.kind,
                    action,
                )
            if spec.can_accept(destination):
                packet_id = spec.push(destination)
                try:
                    buffer.push(
                        _packet(packet_id, destination), destination
                    )
                except ReproError as error:
                    raise _raise(
                        "unexpected-reject",
                        f"input {input_port}: push to output "
                        f"{destination} raised {type(error).__name__}",
                        self.kind,
                        action,
                    ) from error
            else:
                # Discarding: the packet is dropped at the full buffer.
                # Blocking: it stalls upstream.  Either way the buffer
                # must refuse it cleanly and hold no partial state.
                try:
                    buffer.push(
                        _packet(spec.fresh_id(), destination), destination
                    )
                except BufferFullError:
                    pass
                else:
                    raise _raise(
                        "missing-reject",
                        f"input {input_port}: push to full output "
                        f"{destination} did not raise",
                        self.kind,
                        action,
                    )
        for input_port in range(self.num_ports):
            try:
                check_conformance(buffers[input_port], successors[input_port])
                if isinstance(buffers[input_port], DamqBuffer):
                    check_pointer_ram(buffers[input_port]._lists)
            except PropertyViolation as error:
                error.action = action
                raise
        return self._pack(buffers, successors)

    # -- grant enumeration ---------------------------------------------

    def _legal_service_sets(
        self, specs: list[SpecBuffer]
    ) -> list[tuple[tuple[int, int], ...]]:
        """Every crossbar-legal grant set, the empty set included.

        Legal means: each granted queue actually offers a packet, no
        output is granted twice, and no input exceeds its read-port
        budget.  Enumerated output by output, so the result covers every
        matching any arbiter — however unfair or broken its fairness
        state — could produce.
        """
        n = self.num_ports
        budgets = [spec.max_serves for spec in specs]
        candidates = [
            [
                input_port
                for input_port in range(n)
                if specs[input_port].peek(output_port) is not None
            ]
            for output_port in range(n)
        ]
        results: list[tuple[tuple[int, int], ...]] = []
        chosen: list[tuple[int, int]] = []

        def descend(output_port: int) -> None:
            if output_port == n:
                results.append(tuple(chosen))
                return
            descend(output_port + 1)  # leave this output idle
            for input_port in candidates[output_port]:
                if budgets[input_port] > 0:
                    budgets[input_port] -= 1
                    chosen.append((input_port, output_port))
                    descend(output_port + 1)
                    chosen.pop()
                    budgets[input_port] += 1

        descend(0)
        return results

    def _service_outcomes(
        self, specs: list[SpecBuffer]
    ) -> list[tuple[Fraction | None, tuple[tuple[int, int], ...]]]:
        sets = self._legal_service_sets(specs)
        if self.mode == "safety":
            return [(None, grant_set) for grant_set in sets]
        # Markov mode re-derives the longest-queue arbitration policy of
        # repro.markov.arbitration independently: keep only maximum-size
        # grant sets, then only those serving the lexicographically best
        # (sorted descending) queue-length multiset, split uniformly.
        max_size = max(len(grant_set) for grant_set in sets)
        biggest = [
            grant_set for grant_set in sets if len(grant_set) == max_size
        ]

        def score(
            grant_set: tuple[tuple[int, int], ...]
        ) -> tuple[int, ...]:
            lengths = [
                specs[input_port].queue_length(output_port)
                for input_port, output_port in grant_set
            ]
            return tuple(sorted(lengths, reverse=True))

        best_score = max(score(grant_set) for grant_set in biggest)
        winners = [
            grant_set
            for grant_set in biggest
            if score(grant_set) == best_score
        ]
        weight = Fraction(1, len(winners))
        return [(weight, grant_set) for grant_set in winners]

    # -- real-arbiter conformance --------------------------------------

    def _check_real_arbiter(self, payload: Any) -> None:
        """The production arbiter, checked in every explored state.

        For both fairness schemes and every priority-pointer value (with
        zeroed stale counts — the adversarial grant enumeration already
        covers every stale configuration), the arbiter's decision must
        be crossbar-legal, serve genuine head packets, be maximal (work
        conservation: no legal grant can be added) and must not mutate
        any buffer.
        """
        snapshots, specs = payload
        n = self.num_ports
        requests = [
            (input_port, output_port)
            for input_port in range(n)
            for output_port in range(n)
            if specs[input_port].peek(output_port) is not None
        ]
        for smart in (False, True):
            for priority in range(n):
                scheme = "smart" if smart else "dumb"
                context = f"{scheme} arbiter, priority {priority}"
                action: Action = ("arbitrate", scheme, priority)
                buffers = self._restore(snapshots)
                arbiter = CrossbarArbiter(n, n, smart=smart)
                arbiter._priority = priority
                grants = arbiter.arbitrate(
                    buffers, lambda _i, _o, _p: False
                )
                for input_port in range(n):
                    if buffers[input_port].snapshot_state() != snapshots[
                        input_port
                    ]:
                        raise _raise(
                            "arbiter-mutation",
                            f"{context}: arbitration mutated buffer "
                            f"{input_port}",
                            self.kind,
                            action,
                        )
                granted_outputs: dict[int, int] = {}
                reads: dict[int, int] = {}
                for grant in grants:
                    if grant.output_port in granted_outputs:
                        raise _raise(
                            "double-grant",
                            f"{context}: output {grant.output_port} "
                            f"granted to inputs "
                            f"{granted_outputs[grant.output_port]} and "
                            f"{grant.input_port}",
                            self.kind,
                            action,
                        )
                    granted_outputs[grant.output_port] = grant.input_port
                    reads[grant.input_port] = (
                        reads.get(grant.input_port, 0) + 1
                    )
                    if (
                        reads[grant.input_port]
                        > specs[grant.input_port].max_serves
                    ):
                        raise _raise(
                            "read-overrun",
                            f"{context}: input {grant.input_port} granted "
                            f"{reads[grant.input_port]} reads, budget "
                            f"{specs[grant.input_port].max_serves}",
                            self.kind,
                            action,
                        )
                    expected = specs[grant.input_port].peek(
                        grant.output_port
                    )
                    if (
                        expected is None
                        or grant.packet.packet_id != expected
                    ):
                        raise _raise(
                            "grant-identity",
                            f"{context}: grant ({grant.input_port} -> "
                            f"{grant.output_port}) carries packet "
                            f"{grant.packet.packet_id}, head is "
                            f"{expected}",
                            self.kind,
                            action,
                        )
                for input_port, output_port in requests:
                    if (
                        output_port not in granted_outputs
                        and reads.get(input_port, 0)
                        < specs[input_port].max_serves
                    ):
                        raise _raise(
                            "work-conservation",
                            f"{context}: queue ({input_port} -> "
                            f"{output_port}) offers a packet but neither "
                            f"it nor its output was served",
                            self.kind,
                            action,
                        )

    # -- internals ------------------------------------------------------

    def _restore(
        self, snapshots: list[dict[str, Any]]
    ) -> list[SwitchBuffer]:
        for buffer, snapshot in zip(self._scratch, snapshots):
            buffer.restore_state(snapshot)
        return self._scratch

    def _pack(
        self, buffers: list[SwitchBuffer], specs: list[SpecBuffer]
    ) -> tuple[Hashable, Any]:
        for buffer, spec in zip(buffers, specs):
            mapping = spec.renumber()
            for packet in buffer.packets():
                new_id = mapping.get(packet.packet_id)
                if new_id is None:
                    raise _raise(
                        "phantom-packet",
                        f"buffer stores packet {packet.packet_id} the "
                        f"specification does not hold",
                        self.kind,
                    )
                packet.packet_id = new_id
        if self.exact_layout:
            key: Hashable = tuple(
                buffer.canonical_state() for buffer in buffers
            )
        else:
            key = tuple(spec.key() for spec in specs)
        return key, (
            [buffer.snapshot_state() for buffer in buffers],
            specs,
        )

    def markov_state(self, key: Hashable) -> tuple[tuple[int, ...], ...]:
        """Map a collapse-layout state key to the
        :class:`~repro.markov.models.SwitchChainBuilder` encoding.

        The per-port spec keys carry the builder's state directly: the
        destination sequence for FIFO, per-output counts otherwise.
        """
        if not isinstance(key, tuple):
            raise ConfigurationError("markov_state needs a collapse key")
        return tuple(tuple(port_key[2]) for port_key in key)


# ----------------------------------------------------------------------
# Refinement systems
# ----------------------------------------------------------------------


class FifoRefinementSystem:
    """DAMQ restricted to one queue, in lockstep with a FIFO buffer.

    Both buffers receive the identical arrival/departure stream on
    output 0 only.  After every action their full observable states
    (minus the ``kind`` label) must coincide — observational
    equivalence, established exhaustively over all interleavings.
    """

    name = "refinement-fifo"

    def __init__(self, capacity: int, num_outputs: int) -> None:
        self.kind = "DAMQ"
        self.capacity = capacity
        self.num_outputs = num_outputs
        self._damq = make_buffer("DAMQ", capacity, num_outputs)
        self._fifo = make_buffer("FIFO", capacity, num_outputs)

    def config(self) -> dict[str, Any]:
        return {
            "system": self.name,
            "kind": self.kind,
            "capacity": self.capacity,
            "num_outputs": self.num_outputs,
        }

    def initial(self) -> tuple[Hashable, Any]:
        damq = make_buffer("DAMQ", self.capacity, self.num_outputs)
        fifo = make_buffer("FIFO", self.capacity, self.num_outputs)
        return self._pack(damq, fifo, occupancy=0)

    def successors(
        self, payload: Any
    ) -> Iterator[tuple[Action, Hashable, Any]]:
        self.probe(payload)
        for action in self.enumerate_actions(payload):
            yield (action, *self.apply(payload, action))

    def enumerate_actions(self, payload: Any) -> list[Action]:
        _, _, occupancy = payload
        actions: list[Action] = []
        if occupancy < self.capacity:
            actions.append(("arrive", 0))
        if occupancy > 0:
            actions.append(("depart", 0))
        return actions

    def probe(self, payload: Any) -> None:
        damq_snapshot, fifo_snapshot, _ = payload
        damq, fifo = self._restore(damq_snapshot, fifo_snapshot)
        self._compare(damq, fifo, None)

    def apply(self, payload: Any, action: Action) -> tuple[Hashable, Any]:
        damq_snapshot, fifo_snapshot, occupancy = payload
        damq, fifo = self._restore(damq_snapshot, fifo_snapshot)
        name = action[0]
        if name == "arrive":
            for buffer in (damq, fifo):
                buffer.push(_packet(occupancy, 0), 0)
            occupancy += 1
        elif name == "depart":
            first = damq.pop(0)
            second = fifo.pop(0)
            if first.packet_id != second.packet_id:
                raise _raise(
                    "refinement",
                    f"DAMQ popped packet {first.packet_id}, FIFO popped "
                    f"{second.packet_id}",
                    "DAMQ",
                    action,
                )
            occupancy -= 1
        else:
            raise ConfigurationError(f"unknown action {action!r}")
        self._compare(damq, fifo, action)
        return self._pack(damq, fifo, occupancy=occupancy)

    def _compare(
        self, damq: SwitchBuffer, fifo: SwitchBuffer, action: Action | None
    ) -> None:
        left = damq.observable_state()
        right = fifo.observable_state()
        del left["kind"], right["kind"]
        if left != right:
            raise _raise(
                "refinement",
                f"single-queue DAMQ observably diverges from FIFO: "
                f"DAMQ {left}, FIFO {right}",
                "DAMQ",
                action,
            )
        for buffer in (damq, fifo):
            buffer.check_invariants()
        if isinstance(damq, DamqBuffer):
            check_pointer_ram(damq._lists)

    def _restore(
        self, damq_snapshot: dict[str, Any], fifo_snapshot: dict[str, Any]
    ) -> tuple[SwitchBuffer, SwitchBuffer]:
        self._damq.restore_state(damq_snapshot)
        self._fifo.restore_state(fifo_snapshot)
        return self._damq, self._fifo

    def _pack(
        self, damq: SwitchBuffer, fifo: SwitchBuffer, occupancy: int
    ) -> tuple[Hashable, Any]:
        # Renumber ids by queue position (identical in both by the
        # equivalence just checked).
        for position, packet in enumerate(fifo.packets()):
            packet.packet_id = position
        for position, packet in enumerate(
            sorted(damq.packets(), key=lambda p: p.packet_id)
        ):
            packet.packet_id = position
        key = (damq.canonical_state(), fifo.canonical_state())
        return key, (
            damq.snapshot_state(),
            fifo.snapshot_state(),
            occupancy,
        )


class DominanceSystem:
    """DAMQ vs. a statically partitioned buffer with the same slots.

    Both receive the identical workload, gated on the *partitioned*
    buffer's acceptance.  The property: DAMQ never rejects a packet the
    partitioned buffer accepts (dynamic sharing dominates static
    partitioning slot for slot).  States where only DAMQ accepts are
    counted as strict-dominance witnesses.
    """

    name = "dominance"

    def __init__(self, partitioned_kind: str, capacity: int, num_outputs: int) -> None:
        self.kind = partitioned_kind.upper()
        if self.kind not in ("SAMQ", "SAFC"):
            raise ConfigurationError(
                f"dominance compares SAMQ/SAFC to DAMQ, not {self.kind}"
            )
        self.capacity = capacity
        self.num_outputs = num_outputs
        self._partitioned = make_buffer(self.kind, capacity, num_outputs)
        self._damq = make_buffer("DAMQ", capacity, num_outputs)
        self.strict_witnesses = 0

    def config(self) -> dict[str, Any]:
        return {
            "system": self.name,
            "kind": self.kind,
            "capacity": self.capacity,
            "num_outputs": self.num_outputs,
        }

    def initial(self) -> tuple[Hashable, Any]:
        partitioned = make_buffer(self.kind, self.capacity, self.num_outputs)
        damq = make_buffer("DAMQ", self.capacity, self.num_outputs)
        return self._pack(partitioned, damq, next_id=0)

    def successors(
        self, payload: Any
    ) -> Iterator[tuple[Action, Hashable, Any]]:
        self.probe(payload)
        for action in self.enumerate_actions(payload):
            yield (action, *self.apply(payload, action))

    def enumerate_actions(self, payload: Any) -> list[Action]:
        partitioned_snapshot, _, _ = payload
        partitioned, _ = self._restore(partitioned_snapshot, None)
        actions: list[Action] = []
        for destination in range(self.num_outputs):
            if partitioned.can_accept(destination):
                actions.append(("arrive", destination))
            if partitioned.peek(destination) is not None:
                actions.append(("depart", destination))
        return actions

    def probe(self, payload: Any) -> None:
        partitioned_snapshot, damq_snapshot, _ = payload
        partitioned, damq = self._restore(
            partitioned_snapshot, damq_snapshot
        )
        strict_here = False
        for destination in range(self.num_outputs):
            partitioned_accepts = partitioned.can_accept(destination)
            damq_accepts = damq.can_accept(destination)
            if partitioned_accepts and not damq_accepts:
                raise _raise(
                    "dominance",
                    f"{self.kind} accepts for output {destination} but a "
                    f"DAMQ with the same {self.capacity} slots rejects",
                    self.kind,
                )
            if damq_accepts and not partitioned_accepts:
                strict_here = True
        if strict_here:
            self.strict_witnesses += 1

    def apply(self, payload: Any, action: Action) -> tuple[Hashable, Any]:
        partitioned_snapshot, damq_snapshot, next_id = payload
        partitioned, damq = self._restore(
            partitioned_snapshot, damq_snapshot
        )
        name, destination = action[0], int(action[1])
        if name == "arrive":
            for buffer in (partitioned, damq):
                buffer.push(_packet(next_id, destination), destination)
            next_id += 1
        elif name == "depart":
            first = partitioned.pop(destination)
            second = damq.pop(destination)
            if first.packet_id != second.packet_id:
                raise _raise(
                    "fifo-order",
                    f"{self.kind} popped packet {first.packet_id}, DAMQ "
                    f"popped {second.packet_id} for output {destination}",
                    self.kind,
                    action,
                )
        else:
            raise ConfigurationError(f"unknown action {action!r}")
        for buffer in (partitioned, damq):
            buffer.check_invariants()
        if isinstance(damq, DamqBuffer):
            check_pointer_ram(damq._lists)
        return self._pack(partitioned, damq, next_id=next_id)

    def _restore(
        self,
        partitioned_snapshot: dict[str, Any],
        damq_snapshot: dict[str, Any] | None,
    ) -> tuple[SwitchBuffer, SwitchBuffer]:
        self._partitioned.restore_state(partitioned_snapshot)
        if damq_snapshot is not None:
            self._damq.restore_state(damq_snapshot)
        return self._partitioned, self._damq

    def _pack(
        self,
        partitioned: SwitchBuffer,
        damq: SwitchBuffer,
        next_id: int,
    ) -> tuple[Hashable, Any]:
        # Canonical ids: position within (queue, position) order of the
        # partitioned buffer; the DAMQ holds the same packets, so the one
        # mapping relabels both sides consistently.
        mapping: dict[int, int] = {}
        for packet in partitioned.packets():
            mapping[packet.packet_id] = len(mapping)
        for buffer in (partitioned, damq):
            for packet in buffer.packets():
                packet.packet_id = mapping[packet.packet_id]
        key = (partitioned.canonical_state(), damq.canonical_state())
        return key, (
            partitioned.snapshot_state(),
            damq.snapshot_state(),
            len(mapping),
        )


# ----------------------------------------------------------------------
# Verifier entry points
# ----------------------------------------------------------------------

#: Any of the model checker's transition systems.
ModelSystem = Any


def build_system(config: dict[str, Any]) -> ModelSystem:
    """Rebuild a transition system from its :meth:`config` dictionary.

    The inverse of ``system.config()``; used to replay serialized
    counterexamples.
    """
    name = config.get("system")
    if name == "buffer":
        return BufferSystem(
            config["kind"],
            config["capacity"],
            config["num_outputs"],
            protocol=config.get("protocol", "discarding"),
            with_retirement=config.get("with_retirement", True),
            exact_layout=config.get("exact_layout", True),
        )
    if name == "switch":
        return SwitchSystem(
            config["kind"],
            config["num_ports"],
            config["slots"],
            protocol=config.get("protocol", "discarding"),
            mode=config.get("mode", "safety"),
            exact_layout=config.get("exact_layout", False),
            check_arbiter=config.get("check_arbiter", True),
        )
    if name == "starvation":
        return StarvationSystem(
            config["kind"],
            config["capacity"],
            config["num_outputs"],
            quota=config.get("quota"),
        )
    if name == "refinement-fifo":
        return FifoRefinementSystem(
            config["capacity"], config["num_outputs"]
        )
    if name == "dominance":
        return DominanceSystem(
            config["kind"], config["capacity"], config["num_outputs"]
        )
    if name == "kernel-diff":
        # Imported here: the kernel package is optional machinery layered
        # on top of the analysis core, not a dependency of it.
        from repro.kernel.differential import KernelDiffSystem
        from repro.network.simulator import NetworkConfig

        return KernelDiffSystem(
            NetworkConfig.from_state(config["network"]),
            warmup_cycles=config.get("warmup_cycles", 0),
        )
    raise ConfigurationError(f"unknown transition system {name!r}")


@dataclass
class ModelCheckResult:
    """One bounded exhaustive check of one system configuration."""

    config: dict[str, Any]
    stats: "Any"
    violation: Violation | None = None
    counterexample: Counterexample | None = None
    #: Dominance checks only: states where DAMQ accepts and the
    #: partitioned buffer rejects (evidence the dominance is strict).
    strict_witnesses: int | None = None

    @property
    def ok(self) -> bool:
        return self.violation is None

    def describe(self) -> str:
        label = f"{self.config['system']}[{self.config['kind']}]"
        size = (
            f"{self.stats.states} states, "
            f"{self.stats.transitions} transitions"
        )
        if self.stats.truncated:
            size += " (truncated)"
        if self.violation is None:
            suffix = "ok"
            if self.strict_witnesses:
                suffix += f", {self.strict_witnesses} strict witnesses"
            return f"{label}: {suffix} ({size})"
        trace_length = (
            len(self.counterexample.actions)
            if self.counterexample is not None
            else 0
        )
        return (
            f"{label}: VIOLATION {self.violation.render()} "
            f"[{trace_length}-step counterexample] ({size})"
        )


def _run(
    system: ModelSystem,
    *,
    max_states: int | None = None,
    max_depth: int | None = None,
) -> ModelCheckResult:
    result = explore(system, max_states=max_states, max_depth=max_depth)
    counterexample: Counterexample | None = None
    if result.violation is not None and result.trace is not None:
        counterexample = Counterexample(
            config=system.config(),
            actions=list(result.trace),
            violation=result.violation,
        )
    return ModelCheckResult(
        config=system.config(),
        stats=result.stats,
        violation=result.violation,
        counterexample=counterexample,
        strict_witnesses=getattr(system, "strict_witnesses", None),
    )


def verify_buffer(
    kind: str,
    capacity: int,
    num_outputs: int,
    *,
    protocol: str = "discarding",
    with_retirement: bool = True,
    exact_layout: bool = True,
    max_states: int | None = None,
    max_depth: int | None = None,
) -> ModelCheckResult:
    """Exhaustively check one buffer against its reference spec."""
    system = BufferSystem(
        kind,
        capacity,
        num_outputs,
        protocol=protocol,
        with_retirement=with_retirement,
        exact_layout=exact_layout,
    )
    return _run(system, max_states=max_states, max_depth=max_depth)


def verify_switch(
    kind: str,
    num_ports: int,
    slots: int,
    *,
    protocol: str = "discarding",
    exact_layout: bool = False,
    check_arbiter: bool = True,
    max_states: int | None = None,
    max_depth: int | None = None,
) -> ModelCheckResult:
    """Exhaustively check one switch under adversarial grants."""
    system = SwitchSystem(
        kind,
        num_ports,
        slots,
        protocol=protocol,
        mode="safety",
        exact_layout=exact_layout,
        check_arbiter=check_arbiter,
    )
    return _run(system, max_states=max_states, max_depth=max_depth)


def verify_starvation(
    kind: str,
    capacity: int,
    num_outputs: int = 2,
    *,
    quota: int | None = None,
    max_states: int | None = None,
    max_depth: int | None = None,
) -> ModelCheckResult:
    """No reachable state starves a below-quota output (see
    :class:`StarvationSystem`).  Plain DAMQ fails this; the reserved-slot
    variant and the partitioned architectures pass it."""
    system = StarvationSystem(kind, capacity, num_outputs, quota=quota)
    return _run(system, max_states=max_states, max_depth=max_depth)


def verify_fifo_refinement(
    capacity: int,
    num_outputs: int = 2,
    *,
    max_states: int | None = None,
    max_depth: int | None = None,
) -> ModelCheckResult:
    """DAMQ restricted to one queue ≡ FIFO, over all interleavings."""
    system = FifoRefinementSystem(capacity, num_outputs)
    return _run(system, max_states=max_states, max_depth=max_depth)


def verify_dominance(
    kind: str,
    capacity: int,
    num_outputs: int = 2,
    *,
    max_states: int | None = None,
    max_depth: int | None = None,
) -> ModelCheckResult:
    """SAMQ/SAFC acceptance never exceeds same-size DAMQ acceptance."""
    system = DominanceSystem(kind, capacity, num_outputs)
    return _run(system, max_states=max_states, max_depth=max_depth)


# ----------------------------------------------------------------------
# Markov cross-validation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CrossValidation:
    """Stationary-distribution agreement between the explored reachable
    graph and the independently built :mod:`repro.markov` chain."""

    kind: str
    slots: int
    num_ports: int
    rate: float
    explored_states: int
    reference_states: int
    max_error: float
    tolerance: float

    @property
    def ok(self) -> bool:
        return self.max_error <= self.tolerance

    def describe(self) -> str:
        status = "ok" if self.ok else "MISMATCH"
        return (
            f"markov[{self.kind}] rate {self.rate}: {status}, max "
            f"|Δπ| = {self.max_error:.3e} over {self.explored_states} "
            f"reachable / {self.reference_states} modelled states "
            f"(tolerance {self.tolerance:.0e})"
        )


def cross_validate(
    kind: str,
    slots: int,
    rate: float,
    num_ports: int = 2,
    *,
    tolerance: float = 1e-9,
    check_arbiter: bool = False,
) -> CrossValidation:
    """Cross-validate the explored state graph against ``repro.markov``.

    The switch system is explored in ``markov`` mode (service restricted
    to the longest-queue policy, re-derived here independently of
    :mod:`repro.markov.arbitration`), the recorded edges are converted
    into a transition matrix by :mod:`repro.markov.bridge`, and the
    stationary distribution is compared state by state with the chain
    :class:`repro.markov.models.SwitchChainBuilder` compiles from the
    same parameters.  Agreement within ``tolerance`` means two
    completely separate code paths — concrete register-level execution
    versus symbolic enumeration — induce the same Markov chain.
    """
    # Imported lazily: the bridge needs numpy/scipy, which pure
    # lint/model runs should not have to load.
    from repro.markov.bridge import chain_from_graph
    from repro.markov.models import SwitchChainBuilder

    if not 0.0 < rate < 1.0:
        raise ConfigurationError(
            f"traffic rate must lie strictly in (0, 1), got {rate}"
        )
    system = SwitchSystem(
        kind,
        num_ports,
        slots,
        mode="markov",
        check_arbiter=check_arbiter,
    )
    result = explore(system, record_edges=True)
    if result.violation is not None:
        raise SimulationError(
            "markov-mode exploration found a property violation: "
            + result.violation.render()
        )
    if result.edges is None:
        raise SimulationError("markov-mode exploration recorded no edges")
    weighted = []
    for source, target, action in result.edges:
        combo = action[2]
        numerator, denominator = action[3]
        arrivals = sum(1 for choice in combo if choice is not None)
        weighted.append(
            (
                source,
                target,
                Fraction(numerator, denominator),
                num_ports - arrivals,
                arrivals,
            )
        )
    chain = chain_from_graph(
        len(result.keys), weighted, rate, num_ports, tolerance=tolerance
    )
    stationary = chain.steady_state()
    explored: dict[tuple[tuple[int, ...], ...], float] = {}
    for state_index, key in enumerate(result.keys):
        explored[system.markov_state(key)] = float(stationary[state_index])
    builder = SwitchChainBuilder(kind, slots, num_ports=num_ports)
    reference_chain = builder.chain(rate)
    reference_stationary = reference_chain.steady_state()
    reference: dict[tuple[tuple[int, ...], ...], float] = {}
    for state_index, state in enumerate(builder.states):
        reference[state] = float(reference_stationary[state_index])
    for state in explored:
        if state not in reference:
            raise SimulationError(
                f"explored state {state!r} has no counterpart in the "
                f"symbolic chain"
            )
    max_error = 0.0
    for state in set(explored) | set(reference):
        difference = abs(
            explored.get(state, 0.0) - reference.get(state, 0.0)
        )
        if difference > max_error:
            max_error = difference
    return CrossValidation(
        kind=kind.upper(),
        slots=slots,
        num_ports=num_ports,
        rate=rate,
        explored_states=len(result.keys),
        reference_states=len(builder.states),
        max_error=max_error,
        tolerance=tolerance,
    )


# ----------------------------------------------------------------------
# Self-test: plant known bugs, assert the checker catches them
# ----------------------------------------------------------------------


@contextmanager
def _mutate_free_list_leak() -> Iterator[None]:
    """Off-by-one in the DAMQ free list: the final free slot's
    allocation forgets to decrement the free counter."""
    original = SlotListManager.allocate

    def buggy(self: SlotListManager, list_id: int) -> int:
        before = self._free_count
        slot = original(self, list_id)
        if before == 1:
            self._free_count = 1
        return slot

    SlotListManager.allocate = buggy  # type: ignore[method-assign]
    try:
        yield
    finally:
        SlotListManager.allocate = original  # type: ignore[method-assign]


@contextmanager
def _mutate_dropped_tail() -> Iterator[None]:
    """Dropped tail-pointer update: appending to a non-empty list keeps
    the stale tail register."""
    original = SlotListManager.allocate

    def buggy(self: SlotListManager, list_id: int) -> int:
        old_tail = self._tail[list_id]
        slot = original(self, list_id)
        if old_tail != NO_SLOT:
            self._tail[list_id] = old_tail
        return slot

    SlotListManager.allocate = buggy  # type: ignore[method-assign]
    try:
        yield
    finally:
        SlotListManager.allocate = original  # type: ignore[method-assign]


@contextmanager
def _mutate_double_grant() -> Iterator[None]:
    """Arbiter grants the same output twice in one cycle."""
    original = CrossbarArbiter.arbitrate

    def buggy(
        self: CrossbarArbiter,
        buffers: Any,
        blocked: Any,
        lengths: Any = None,
    ) -> Any:
        grants = original(self, buffers, blocked, lengths)
        if grants:
            grants.append(grants[0])
        return grants

    CrossbarArbiter.arbitrate = buggy  # type: ignore[method-assign]
    try:
        yield
    finally:
        CrossbarArbiter.arbitrate = original  # type: ignore[method-assign]


@contextmanager
def _mutate_fifo_reorder() -> Iterator[None]:
    """FIFO push inserts at the head instead of the tail (queue-jump),
    with the length registers patched up so only the *ordering*
    properties can catch it."""
    original = FifoBuffer.push

    def buggy(self: FifoBuffer, packet: Packet, destination: int) -> None:
        original(self, packet, destination)
        if len(self._queue) > 1:
            self._queue.rotate(1)
            for output in range(self.num_outputs):
                self._lengths[output] = 0
            self._lengths[self._queue[0][1]] = self._used

    FifoBuffer.push = buggy  # type: ignore[method-assign]
    try:
        yield
    finally:
        FifoBuffer.push = original  # type: ignore[method-assign]


@contextmanager
def _mutate_occupancy_leak() -> Iterator[None]:
    """SAMQ pop leaks its partition's occupancy accounting: the slot is
    never returned to the free pool."""
    original = SamqBuffer.pop

    def buggy(self: SamqBuffer, destination: int) -> Packet:
        packet = original(self, destination)
        self._used[destination] += packet.size
        return packet

    SamqBuffer.pop = buggy  # type: ignore[method-assign]
    try:
        yield
    finally:
        SamqBuffer.pop = original  # type: ignore[method-assign]


@dataclass(frozen=True)
class _Mutation:
    name: str
    description: str
    patch: Callable[[], Any]
    check: Callable[[], ModelCheckResult]


MUTATIONS: tuple[_Mutation, ...] = (
    _Mutation(
        name="damq-free-list-leak",
        description="DAMQ free-list counter off by one on the last slot",
        patch=_mutate_free_list_leak,
        check=lambda: verify_buffer("DAMQ", 4, 2),
    ),
    _Mutation(
        name="damq-dropped-tail",
        description="DAMQ tail-pointer register not updated on append",
        patch=_mutate_dropped_tail,
        check=lambda: verify_buffer("DAMQ", 4, 2),
    ),
    _Mutation(
        name="arbiter-double-grant",
        description="crossbar arbiter grants one output to two inputs",
        patch=_mutate_double_grant,
        check=lambda: verify_switch("DAMQ", 2, 2, max_states=64),
    ),
    _Mutation(
        name="fifo-reorder",
        description="FIFO push queue-jumps to the head",
        patch=_mutate_fifo_reorder,
        check=lambda: verify_buffer("FIFO", 2, 2),
    ),
    _Mutation(
        name="samq-occupancy-leak",
        description="SAMQ pop never frees its partition slot",
        patch=_mutate_occupancy_leak,
        check=lambda: verify_buffer("SAMQ", 4, 2),
    ),
)


@dataclass(frozen=True)
class MutationResult:
    """Outcome of one planted-bug detection run."""

    name: str
    description: str
    detected: bool
    violation: Violation | None
    trace_length: int

    def describe(self) -> str:
        status = "detected" if self.detected else "MISSED"
        detail = (
            f" as {self.violation.prop!r} in {self.trace_length} steps"
            if self.violation is not None
            else ""
        )
        return f"{self.name}: {status}{detail}"


def run_self_test() -> list[MutationResult]:
    """Plant each known bug, assert the checker finds it, then prove the
    un-mutated configurations still verify cleanly.

    Raises :class:`SimulationError` if any planted bug escapes detection
    or if a clean configuration reports a (false-positive) violation
    after the patches are unwound.
    """
    results: list[MutationResult] = []
    for mutation in MUTATIONS:
        with mutation.patch():
            outcome = mutation.check()
        trace_length = (
            len(outcome.counterexample.actions)
            if outcome.counterexample is not None
            else 0
        )
        results.append(
            MutationResult(
                name=mutation.name,
                description=mutation.description,
                detected=outcome.violation is not None,
                violation=outcome.violation,
                trace_length=trace_length,
            )
        )
    missed = [result.name for result in results if not result.detected]
    if missed:
        raise SimulationError(
            f"planted bugs escaped the model checker: {', '.join(missed)}"
        )
    for mutation in MUTATIONS:
        clean = mutation.check()
        if clean.violation is not None:
            raise SimulationError(
                f"false positive after unwinding {mutation.name}: "
                + clean.violation.render()
            )
    return results
