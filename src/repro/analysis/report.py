"""Rendering of lint findings for humans (text) and tooling (JSON).

The JSON document is versioned so CI annotations and future tooling can
consume it without scraping the text form:

.. code-block:: json

    {
      "version": 1,
      "files_checked": 120,
      "findings": [
        {"code": "REP004", "path": "...", "line": 7, "column": 12,
         "message": "...", "summary": "..."}
      ],
      "counts": {"REP004": 1},
      "clean": false
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.analysis.lint import Finding, RULES

__all__ = ["render_text", "render_json", "REPORT_VERSION"]

#: Schema version of the JSON report.
REPORT_VERSION = 1


def _counts(findings: Sequence[Finding]) -> dict[str, int]:
    counter = Counter(finding.code for finding in findings)
    return {code: counter[code] for code in sorted(counter)}


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """Human-readable report: one line per finding plus a summary line."""
    lines = [finding.render() for finding in findings]
    if findings:
        per_code = ", ".join(
            f"{code}: {count}" for code, count in _counts(findings).items()
        )
        lines.append(
            f"{len(findings)} finding(s) in {files_checked} file(s) "
            f"({per_code})"
        )
    else:
        lines.append(f"clean: 0 findings in {files_checked} file(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    """Versioned JSON report (see module docstring for the schema)."""
    document = {
        "version": REPORT_VERSION,
        "files_checked": files_checked,
        "findings": [finding.as_dict() for finding in findings],
        "counts": _counts(findings),
        "clean": not findings,
        "rules": {
            code: rule.summary() for code, rule in sorted(RULES.items())
        },
    }
    return json.dumps(document, indent=2, sort_keys=False)
