"""Rendering of lint findings for humans (text), tooling (JSON) and CI
(GitHub Actions workflow annotations).

The JSON document is versioned so CI annotations and future tooling can
consume it without scraping the text form.  Paths are repo-relative
(relative to the current working directory) so reports are comparable
across machines and checkouts:

.. code-block:: json

    {
      "schema": 2,
      "files_checked": 120,
      "findings": [
        {"code": "REP004", "path": "src/repro/...", "line": 7,
         "column": 12, "message": "...", "summary": "..."}
      ],
      "counts": {"REP004": 1},
      "clean": false
    }

Schema history: version 1 used the key ``"version"`` and emitted paths
exactly as given on the command line; version 2 renamed the key to
``"schema"`` and normalizes paths repo-relative.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.analysis.lint import Finding, RULES

__all__ = ["render_text", "render_json", "render_github", "REPORT_VERSION"]

#: Schema version of the JSON report.
REPORT_VERSION = 2


def _counts(findings: Sequence[Finding]) -> dict[str, int]:
    counter = Counter(finding.code for finding in findings)
    return {code: counter[code] for code in sorted(counter)}


def _relative_path(path: str) -> str:
    """Make ``path`` repo-relative (POSIX separators) when possible.

    Paths outside the current working directory are returned unchanged —
    better an absolute path than a wrong relative one.
    """
    candidate = Path(path)
    if candidate.is_absolute():
        try:
            candidate = candidate.relative_to(Path.cwd())
        except ValueError:
            return path
    return candidate.as_posix()


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """Human-readable report: one line per finding plus a summary line."""
    lines = [finding.render() for finding in findings]
    if findings:
        per_code = ", ".join(
            f"{code}: {count}" for code, count in _counts(findings).items()
        )
        lines.append(
            f"{len(findings)} finding(s) in {files_checked} file(s) "
            f"({per_code})"
        )
    else:
        lines.append(f"clean: 0 findings in {files_checked} file(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    """Versioned JSON report (see module docstring for the schema)."""
    serialized = []
    for finding in findings:
        entry = finding.as_dict()
        entry["path"] = _relative_path(finding.path)
        serialized.append(entry)
    document = {
        "schema": REPORT_VERSION,
        "files_checked": files_checked,
        "findings": serialized,
        "counts": _counts(findings),
        "clean": not findings,
        "rules": {
            code: rule.summary() for code, rule in sorted(RULES.items())
        },
    }
    return json.dumps(document, indent=2, sort_keys=False)


def render_github(findings: Sequence[Finding], files_checked: int) -> str:
    """GitHub Actions workflow commands: one ``::error`` per finding.

    Emitted to stdout inside an Actions job, each line becomes an inline
    annotation on the pull-request diff.  Messages have ``%``, ``\\r``
    and ``\\n`` percent-encoded as the workflow-command syntax requires.
    A trailing ``::notice`` summarises the run so a clean job still
    shows the linter executed.
    """

    def escape(text: str) -> str:
        return (
            text.replace("%", "%25")
            .replace("\r", "%0D")
            .replace("\n", "%0A")
        )

    lines = [
        f"::error file={_relative_path(finding.path)},"
        f"line={finding.line},col={finding.column},"
        f"title={finding.code}::{escape(finding.message)}"
        for finding in findings
    ]
    summary = (
        f"repro-lint: {len(findings)} finding(s) in {files_checked} file(s)"
        if findings
        else f"repro-lint: clean ({files_checked} file(s) checked)"
    )
    lines.append(f"::notice title=repro-lint::{escape(summary)}")
    return "\n".join(lines)
