"""Breadth-first frontier engine for the explicit-state model checker.

The engine is deliberately generic: a *transition system* supplies an
initial state and a deterministic successor enumeration; the engine owns
the frontier queue, the visited set (keyed on the system's canonical
state values) and the parent/action records needed to reconstruct a
counterexample.  Breadth-first order makes the first violation found a
*minimal* one: no shorter action sequence reaches any violating state.

Systems signal violations by raising
:class:`repro.analysis.properties.PropertyViolation` from their successor
generator (with the in-flight action attached); the engine converts the
exception into an :class:`ExplorationResult` carrying the full action
trace from the initial state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator, Protocol

from repro.analysis.properties import PropertyViolation, Violation
from repro.errors import InvariantError

__all__ = [
    "Action",
    "Edge",
    "ExplorationResult",
    "SearchStats",
    "TransitionSystem",
    "explore",
]

#: One atomic action, e.g. ``("arrive", 1)`` or ``("cycle", served, combo)``.
Action = tuple[Any, ...]

#: One recorded transition: (source state id, target state id, action).
Edge = tuple[int, int, Action]


class TransitionSystem(Protocol):
    """What the engine needs from a system under exploration."""

    def initial(self) -> tuple[Hashable, Any]:
        """Canonical key and opaque payload of the initial state."""
        ...

    def successors(
        self, payload: Any
    ) -> Iterator[tuple[Action, Hashable, Any]]:
        """Enumerate ``(action, successor key, successor payload)``.

        Must be deterministic.  Raises :class:`PropertyViolation` (with
        the action attached) when a property fails along a transition.
        """
        ...


@dataclass
class SearchStats:
    """Search-size accounting for reports and CI budgets."""

    states: int = 0
    transitions: int = 0
    max_depth: int = 0
    truncated: bool = False


@dataclass
class ExplorationResult:
    """Outcome of one bounded exhaustive search."""

    stats: SearchStats
    violation: Violation | None = None
    #: Minimal action sequence from the initial state to the violation
    #: (the failing action last); ``None`` when the search was clean.
    trace: list[Action] | None = None
    #: Every canonical state key, in discovery (BFS) order.
    keys: list[Hashable] = field(default_factory=list)
    #: Recorded transitions when requested (for the Markov bridge).
    edges: list[Edge] | None = None

    @property
    def ok(self) -> bool:
        return self.violation is None


def explore(
    system: TransitionSystem,
    *,
    max_states: int | None = None,
    max_depth: int | None = None,
    record_edges: bool = False,
) -> ExplorationResult:
    """Exhaustively explore ``system`` breadth-first.

    ``max_states``/``max_depth`` bound the search (the ``truncated`` flag
    reports when a bound was hit); within the bounds the reachable state
    space is covered completely.  With ``record_edges`` every transition
    is retained as ``(source id, target id, action)`` so the reachable
    graph can be converted into a Markov transition matrix.
    """
    stats = SearchStats()
    initial_key, initial_payload = system.initial()
    keys: list[Hashable] = [initial_key]
    index: dict[Hashable, int] = {initial_key: 0}
    payloads: dict[int, Any] = {0: initial_payload}
    parents: list[tuple[int, Action | None]] = [(-1, None)]
    depths: list[int] = [0]
    edges: list[Edge] | None = [] if record_edges else None
    frontier: deque[int] = deque([0])

    def trace_to(node: int, last_action: Action | None) -> list[Action]:
        actions: list[Action] = []
        while node > 0:
            parent, action = parents[node]
            if action is None:
                raise InvariantError(
                    f"non-root search node {node} has no producing action"
                )
            actions.append(action)
            node = parent
        actions.reverse()
        if last_action is not None:
            actions.append(last_action)
        return actions

    while frontier:
        node = frontier.popleft()
        payload = payloads.pop(node)
        if max_depth is not None and depths[node] >= max_depth:
            stats.truncated = True
            continue
        try:
            for action, successor_key, successor_payload in system.successors(
                payload
            ):
                stats.transitions += 1
                successor = index.get(successor_key)
                if successor is None:
                    if max_states is not None and len(keys) >= max_states:
                        stats.truncated = True
                        continue
                    successor = len(keys)
                    index[successor_key] = successor
                    keys.append(successor_key)
                    payloads[successor] = successor_payload
                    parents.append((node, action))
                    depths.append(depths[node] + 1)
                    if depths[successor] > stats.max_depth:
                        stats.max_depth = depths[successor]
                    frontier.append(successor)
                if edges is not None:
                    edges.append((node, successor, action))
        except PropertyViolation as error:
            stats.states = len(keys)
            return ExplorationResult(
                stats=stats,
                violation=error.violation,
                trace=trace_to(node, error.action),
                keys=keys,
                edges=edges,
            )
    stats.states = len(keys)
    return ExplorationResult(stats=stats, keys=keys, edges=edges)
