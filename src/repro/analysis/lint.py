"""AST-based determinism linter with repo-specific rules (REP001..REP007).

The rules encode the reproducibility contract of this codebase — every
stochastic draw goes through :mod:`repro.utils.rng`, simulation paths never
read wall clocks, iteration order is always deterministic — plus a few
correctness conventions (no float equality, no mutable default arguments,
``InvariantError`` instead of bare ``assert`` for model invariants).

Each rule is a class whose docstring is the normative description printed
by ``python -m repro.analysis rules``.  A finding on a line carrying a
``# repro: noqa=REPxxx`` comment (one or more comma-separated codes) is
suppressed; the comment should state *why* the pattern is intentional.

The linter is pure standard library (``ast`` + ``re``), so it runs in any
environment the package itself runs in.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "LintRule",
    "RULES",
    "SIMULATION_PACKAGES",
    "WALL_CLOCK_ALLOWLIST",
    "lint_paths",
    "lint_source",
]

#: Packages whose modules are cycle-accurate simulation paths: wall-clock
#: reads and order-dependent iteration are determinism hazards here.
#: ``repro.kernel`` is the vectorized simulation backend — it must obey
#: the exact same determinism contract as the scalar simulator it
#: replays, so it lives under the same rules.  ``repro.perf`` is
#: deliberately absent — the perf harness exists to read wall clocks.
SIMULATION_PACKAGES = (
    "repro.core",
    "repro.switch",
    "repro.network",
    "repro.chip",
    "repro.kernel",
)

#: The one module allowed to talk to ``numpy.random`` directly: every
#: other module must draw through its seeded, named streams.
RNG_MODULE = "repro.utils.rng"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\s*=\s*(REP\d{3}(?:\s*,\s*REP\d{3})*)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    code: str
    message: str
    path: str
    line: int
    column: int

    def as_dict(self) -> dict[str, object]:
        """JSON-able representation (used by ``--format json``)."""
        rule = RULES.get(self.code)
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "summary": rule.summary() if rule is not None else "",
        }

    def render(self) -> str:
        """One-line human-readable form (``path:line:col: CODE message``)."""
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"


class LintRule:
    """Base class for the repo-specific rules.

    Subclasses carry the rule ``code`` and a docstring that serves as the
    normative description; the detection logic itself lives in
    :class:`_FileChecker`, keyed by code, so one AST walk serves all rules.
    """

    code: str = ""

    @classmethod
    def summary(cls) -> str:
        """First line of the rule's docstring."""
        doc = cls.__doc__ or ""
        return doc.strip().splitlines()[0] if doc.strip() else ""

    @classmethod
    def doc(cls) -> str:
        """Full docstring of the rule, dedented."""
        import inspect

        return inspect.cleandoc(cls.__doc__ or "")


class Rep001UnseededRandom(LintRule):
    """Unseeded ``random``/``numpy.random`` module-level call.

    Module-level functions of the stdlib ``random`` module and of
    ``numpy.random`` draw from hidden global state that is shared across
    the whole process and reseeded by nobody: a single call silently
    breaks bit-reproducibility and perturbs every other consumer.  All
    stochastic draws must flow through the seeded, named streams of
    ``repro.utils.rng`` (the one module exempt from this rule).
    Explicitly seeded constructions — ``random.Random(seed)``,
    ``numpy.random.default_rng(seed)``, ``Generator``/``SeedSequence``/
    ``PCG64`` objects — are allowed; the *argument-less* forms are not.
    """

    code = "REP001"


class Rep002WallClock(LintRule):
    """Wall-clock read inside a simulation path.

    ``time.time``/``perf_counter``/``monotonic``, ``datetime.now`` and
    friends make simulated behaviour depend on host speed and scheduling.
    The cycle-accurate packages (``repro.core``, ``repro.switch``,
    ``repro.network``, ``repro.chip``, ``repro.kernel``) must derive all
    timing from simulated cycle counters; wall clocks belong in
    ``repro.perf`` (the measurement harness) and the CLI layers only.
    """

    code = "REP002"


class Rep003SetIteration(LintRule):
    """Iteration over a set in a simulation module.

    Python ``set`` iteration order depends on insertion history and hash
    randomization of the element type; iterating one in a hot path is an
    ordering hazard that can silently reorder RNG draws or arbitration
    decisions.  Iterate lists/tuples, or ``sorted(...)`` the set first.
    Membership tests and set algebra remain fine — only ``for ... in`` a
    set literal, set comprehension, or ``set(...)``/``frozenset(...)``
    call is flagged.
    """

    code = "REP003"


class Rep004FloatEquality(LintRule):
    """Float literal compared with ``==``/``!=``.

    Exact equality on floats is almost always a rounding bug waiting to
    happen; compare against a tolerance (``math.isclose``) or restructure
    the logic.  Exact sentinel checks (``probability == 0.0`` short
    circuits that must not draw from the RNG) are legitimate — suppress
    those with ``# repro: noqa=REP004`` and a justification.
    """

    code = "REP004"


class Rep005BareAssert(LintRule):
    """Bare ``assert`` used for a model invariant outside tests.

    ``python -O`` strips ``assert`` statements, so an invariant guarded by
    one silently stops firing in optimized runs — and fault-injection
    campaigns can no longer distinguish *detected* corruption from
    ordinary failures.  Library code must raise
    ``repro.errors.InvariantError`` (or a more specific ``ReproError``)
    instead.  Test files may assert freely.
    """

    code = "REP005"


class Rep006MutableDefault(LintRule):
    """Mutable default argument.

    A ``list``/``dict``/``set`` (literal, comprehension, or constructor
    call) default is evaluated once at function definition time and shared
    by every call — state leaks across invocations.  Use ``None`` and
    construct inside the function body.
    """

    code = "REP006"


class Rep008SetIterationLibrary(LintRule):
    """Iteration over a set in a library module outside the simulation core.

    REP003 bans set iteration inside the cycle-accurate simulation
    packages; this rule extends the same discipline to every other
    ``repro`` library module.  Analysis reports, experiment sweeps,
    checkpoint writers and cache manifests all *produce output* whose
    ordering feeds exported artifacts, and any code interleaved with RNG
    draws consumes streams in iteration order — a set's hash-dependent
    order makes both silently irreproducible across processes and Python
    builds.  Iterate lists/tuples, or ``sorted(...)`` the set first.
    Membership tests and set algebra remain fine — only ``for ... in`` a
    set literal, set comprehension, or ``set(...)``/``frozenset(...)``
    call is flagged.  Order-insensitive reductions (``sum``, ``max``,
    counting) are legitimate — suppress with ``# repro: noqa=REP008``
    and a justification.  Dict/dict-view iteration is deliberately not
    flagged: dictionaries preserve insertion order by language guarantee.
    """

    code = "REP008"


class Rep007WallClockOutsideAllowlist(LintRule):
    """Wall-clock read outside the measurement allowlist.

    Beyond the simulation packages (REP002), *any* library module that
    reads a wall clock undermines reproducibility: results and artifacts
    start depending on when and on what machine a run happened.  Only
    ``repro.perf`` (the measurement harness — its entire purpose is
    timing), ``repro.telemetry`` (exports may stamp real durations) and
    ``repro.service`` (process supervision: heartbeats, deadlines and
    retry delays are inherently wall-clock) may call
    ``time.time``/``perf_counter``/``datetime.now`` and friends.
    CLI progress timing in ``__main__`` modules is legitimate — suppress
    with ``# repro: noqa=REP007`` and a justification.  Tests and the
    simulation packages themselves are out of scope (the latter are
    REP002's, which carries no allowlist at all).
    """

    code = "REP007"


#: Registry of every rule, by code.
RULES: dict[str, type[LintRule]] = {
    rule.code: rule
    for rule in (
        Rep001UnseededRandom,
        Rep002WallClock,
        Rep003SetIteration,
        Rep004FloatEquality,
        Rep005BareAssert,
        Rep006MutableDefault,
        Rep007WallClockOutsideAllowlist,
        Rep008SetIterationLibrary,
    )
}

#: Seeded constructors exempt from REP001 when called with arguments.
_SEEDED_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.MT19937",
        "numpy.random.SFC64",
    }
)

#: Canonical names REP002 treats as wall-clock reads.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Bare constructor names REP006 flags when used as defaults.
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "deque", "defaultdict"})

#: Packages whose modules may read wall clocks (REP007): the measurement
#: harness exists to time things, telemetry exports may stamp real
#: durations, and the simulation service supervises real processes
#: (heartbeats, deadlines, retry delays are wall-clock by nature).
#: Everything else must justify each read with a noqa.
WALL_CLOCK_ALLOWLIST = ("repro.perf", "repro.telemetry", "repro.service")


@dataclass(frozen=True)
class _FileContext:
    """Where a file sits in the repo, as far as rule scoping cares."""

    path: str
    module: str | None  # dotted module when under a ``repro`` tree
    is_test: bool

    @property
    def in_simulation_path(self) -> bool:
        if self.module is None:
            return False
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in SIMULATION_PACKAGES
        )

    @property
    def is_rng_module(self) -> bool:
        return self.module == RNG_MODULE

    @property
    def in_wall_clock_allowlist(self) -> bool:
        if self.module is None:
            return False
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in WALL_CLOCK_ALLOWLIST
        )


def _classify(path: Path) -> _FileContext:
    """Derive the dotted module name and test-ness from a file path."""
    parts = path.parts
    module: str | None = None
    if "repro" in parts:
        tail = parts[parts.index("repro") :]
        stem = list(tail[:-1]) + [Path(tail[-1]).stem]
        if stem[-1] == "__init__":
            stem = stem[:-1]
        module = ".".join(stem)
    name = path.name
    is_test = (
        "tests" in parts
        or name.startswith("test_")
        or name.startswith("bench_")
        or name == "conftest.py"
    )
    return _FileContext(path=str(path), module=module, is_test=is_test)


def _noqa_map(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> codes suppressed on that line."""
    suppressed: dict[int, frozenset[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match:
            codes = frozenset(
                code.strip() for code in match.group(1).split(",")
            )
            suppressed[number] = codes
    return suppressed


class _FileChecker(ast.NodeVisitor):
    """One AST walk that evaluates every applicable rule."""

    def __init__(self, context: _FileContext) -> None:
        self.context = context
        self.findings: list[Finding] = []
        # Alias maps built from the file's imports.
        self._module_aliases: dict[str, str] = {}  # local name -> module path
        self._member_aliases: dict[str, str] = {}  # local name -> canonical call

    # -- finding helpers -------------------------------------------------

    def _add(self, code: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                code=code,
                message=message,
                path=self.context.path,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0) + 1,
            )
        )

    # -- import tracking -------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            # ``import numpy.random`` binds the *root* name locally.
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self._module_aliases[local] = target
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                full = f"{node.module}.{alias.name}"
                if full in ("numpy.random", "datetime.datetime", "datetime.date"):
                    self._module_aliases[local] = full
                elif node.module in ("random", "numpy.random", "time", "datetime"):
                    self._member_aliases[local] = full
        self.generic_visit(node)

    # -- canonical call-name resolution ----------------------------------

    def _canonical(self, func: ast.expr) -> str | None:
        """Resolve a call's function expression to a canonical dotted name."""
        if isinstance(func, ast.Name):
            return self._member_aliases.get(func.id)
        if isinstance(func, ast.Attribute):
            chain: list[str] = [func.attr]
            value = func.value
            while isinstance(value, ast.Attribute):
                chain.append(value.attr)
                value = value.value
            if not isinstance(value, ast.Name):
                return None
            root = self._module_aliases.get(value.id)
            if root is None:
                return None
            chain.append(root)
            return ".".join(reversed(chain))
        return None

    # -- rules driven by Call nodes --------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        canonical = self._canonical(node.func)
        if canonical is not None:
            self._check_rep001(node, canonical)
            self._check_rep002(node, canonical)
            self._check_rep007(node, canonical)
        self.generic_visit(node)

    def _check_rep001(self, node: ast.Call, canonical: str) -> None:
        if self.context.is_rng_module:
            return
        if not (
            canonical.startswith("random.")
            or canonical.startswith("numpy.random.")
        ):
            return
        if canonical in _SEEDED_CONSTRUCTORS and (node.args or node.keywords):
            return  # explicitly seeded construction
        self._add(
            "REP001",
            node,
            f"call to {canonical}() uses unseeded global RNG state; draw "
            f"through a repro.utils.rng.RandomStream instead",
        )

    def _check_rep002(self, node: ast.Call, canonical: str) -> None:
        if not self.context.in_simulation_path or self.context.is_test:
            return
        if canonical in _WALL_CLOCK_CALLS:
            self._add(
                "REP002",
                node,
                f"wall-clock read {canonical}() inside a simulation path; "
                f"derive timing from simulated cycles (wall clocks belong "
                f"in repro.perf)",
            )

    def _check_rep007(self, node: ast.Call, canonical: str) -> None:
        if self.context.is_test or self.context.module is None:
            return
        if self.context.in_wall_clock_allowlist:
            return
        if self.context.in_simulation_path:
            return  # REP002's territory — no allowlist applies there
        if canonical in _WALL_CLOCK_CALLS:
            self._add(
                "REP007",
                node,
                f"wall-clock read {canonical}() outside the measurement "
                f"allowlist ({', '.join(WALL_CLOCK_ALLOWLIST)}); justify "
                f"with a noqa comment or move the timing into repro.perf",
            )

    # -- REP003: set iteration -------------------------------------------

    def _is_set_expression(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def _check_iteration(self, iterable: ast.expr) -> None:
        if self.context.is_test or not self._is_set_expression(iterable):
            return
        if self.context.in_simulation_path:
            self._add(
                "REP003",
                iterable,
                "iteration over a set in a simulation module has "
                "hash-dependent order; iterate a list/tuple or sorted(...)",
            )
        elif self.context.module is not None and (
            self.context.module == "repro"
            or self.context.module.startswith("repro.")
        ):
            # Library modules outside the simulation core: same hazard,
            # aimed at output ordering and RNG consumption (REP008).
            self._add(
                "REP008",
                iterable,
                "iteration over a set in a library module has "
                "hash-dependent order that leaks into output ordering or "
                "RNG consumption; iterate a list/tuple or sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    # -- REP004: float equality ------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        values = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = values[index], values[index + 1]
            if self._is_float_literal(left) or self._is_float_literal(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                self._add(
                    "REP004",
                    node,
                    f"float literal compared with {symbol}; use a tolerance "
                    f"(math.isclose) or justify the exact sentinel with a "
                    f"noqa comment",
                )
                break
        self.generic_visit(node)

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        # A negated literal parses as UnaryOp(USub, Constant).
        return (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, float)
        )

    # -- REP005: bare assert ---------------------------------------------

    def visit_Assert(self, node: ast.Assert) -> None:
        if not self.context.is_test and self.context.module is not None:
            self._add(
                "REP005",
                node,
                "bare assert is stripped by python -O; raise "
                "repro.errors.InvariantError (or a specific ReproError) "
                "for model invariants",
            )
        self.generic_visit(node)

    # -- REP006: mutable defaults ----------------------------------------

    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    ) -> None:
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CONSTRUCTORS
            )
            if mutable:
                self._add(
                    "REP006",
                    default,
                    "mutable default argument is shared across calls; "
                    "default to None and construct in the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


def lint_source(
    source: str, path: str = "<string>", module: str | None = None
) -> list[Finding]:
    """Lint one source text; ``module`` overrides path-derived scoping.

    Returns the surviving findings (noqa suppressions already applied),
    sorted by location.  Raises :class:`SyntaxError` when the source does
    not parse — a file the linter cannot read is a finding of its own at
    the caller's level (:func:`lint_paths` converts it).
    """
    context = _classify(Path(path))
    if module is not None:
        context = _FileContext(
            path=context.path, module=module, is_test=context.is_test
        )
        if module.startswith("tests.") or module == "tests":
            context = _FileContext(path=context.path, module=module, is_test=True)
    tree = ast.parse(source, filename=path)
    checker = _FileChecker(context)
    checker.visit(tree)
    suppressed = _noqa_map(source)
    findings = [
        finding
        for finding in checker.findings
        if finding.code not in suppressed.get(finding.line, frozenset())
    ]
    findings.sort(key=lambda finding: (finding.path, finding.line, finding.column))
    return findings


def _python_files(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Iterable[str]) -> tuple[list[Finding], int]:
    """Lint every ``*.py`` file under ``paths``.

    Returns ``(findings, files_checked)``.  Unparseable files produce a
    synthetic ``REP000`` finding rather than aborting the run.
    """
    findings: list[Finding] = []
    checked = 0
    for file_path in _python_files(paths):
        checked += 1
        text = file_path.read_text(encoding="utf-8")
        try:
            findings.extend(lint_source(text, path=str(file_path)))
        except SyntaxError as error:
            findings.append(
                Finding(
                    code="REP000",
                    message=f"file does not parse: {error.msg}",
                    path=str(file_path),
                    line=error.lineno or 1,
                    column=(error.offset or 0) + 1,
                )
            )
    findings.sort(key=lambda finding: (finding.path, finding.line, finding.column))
    return findings, checked
