"""Static analysis, runtime sanitizing and model checking for repro.

The paper's results rest on two contracts nothing in the language enforces:

* **Bit-reproducibility** — every stochastic draw flows through the seeded,
  named streams of :mod:`repro.utils.rng`; no wall-clock reads or
  iteration-order hazards may leak into a simulation path (the PR 2
  determinism pins turn any violation into a test failure, but only after
  the fact).
* **Hardware feasibility** — the Section 3.1 micro-architecture gives each
  buffer one write port and a bounded number of read ports per clock, and
  keeps every slot on exactly one linked list.  A modeling bug that
  performs more RAM accesses per cycle than the register file allows, or
  corrupts the pointer RAM, silently produces results no chip could.

This package enforces both, three ways:

* :mod:`repro.analysis.lint` — an AST linter with repo-specific rules
  (REP001..REP008), run as ``python -m repro.analysis lint src tests`` or
  via the ``repro-lint`` console script.  Findings are suppressed per line
  with ``# repro: noqa=REPxxx`` comments.
* :mod:`repro.analysis.sanitizer` — an opt-in runtime instrumentation
  layer (``REPRO_SANITIZE=1`` or ``sanitize=True``) in the spirit of
  ASan/TSan: it wraps :class:`~repro.core.linkedlist.SlotListManager` and
  the four :class:`~repro.core.buffer.SwitchBuffer` implementations to
  detect slot use-after-free, double-free, pointer cycles/leaks, and
  per-cycle port-bandwidth violations.
* :mod:`repro.analysis.model` — an explicit-state bounded model checker
  (``python -m repro.analysis model`` / ``repro-verify``) that
  exhaustively explores all arrival × grant × departure interleavings of
  each buffer architecture at small parameters against reference
  specifications (:mod:`repro.analysis.properties`), checks the paper's
  refinement claims, replays violations as minimal counterexample traces
  (:mod:`repro.analysis.counterexample`) and cross-validates the explored
  state graph against the :mod:`repro.markov` chains.

The sanitizer's runtime :class:`Violation` (a recorded hardware-model
event) predates and is distinct from the model checker's
:class:`repro.analysis.properties.Violation` (a refuted property);
import the latter from its module directly.
"""

from __future__ import annotations

from repro.analysis.lint import Finding, LintRule, RULES, lint_paths, lint_source
from repro.analysis.report import (
    render_github,
    render_json,
    render_text,
)
from repro.analysis.sanitizer import (
    HardwareSanitizer,
    SanitizedOmegaNetworkSimulator,
    SanitizedSlotListManager,
    Violation,
    sanitize_enabled,
)

__all__ = [
    "Finding",
    "HardwareSanitizer",
    "LintRule",
    "RULES",
    "SanitizedOmegaNetworkSimulator",
    "SanitizedSlotListManager",
    "Violation",
    "lint_paths",
    "lint_source",
    "render_github",
    "render_json",
    "render_text",
    "sanitize_enabled",
]
