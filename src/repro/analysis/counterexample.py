"""Counterexample traces: serialize, replay, export as waveforms.

A counterexample is the minimal action sequence the model checker found
from the initial state to a property violation, together with the system
configuration it was found under.  Because every transition system in
:mod:`repro.analysis.model` is deterministic given the action sequence,
a counterexample replays bit-exactly: :meth:`Counterexample.replay`
re-executes the actions on freshly built buffers and returns the
violation it reproduces.

Counterexamples round-trip through JSON (:meth:`to_dict` /
:meth:`from_dict`), render as a standalone Python script
(:meth:`render_script`) and export through :mod:`repro.telemetry` as a
VCD waveform plus a Chrome ``trace_event`` file (:meth:`export`), so a
failed check can be inspected in GTKWave or ``about://tracing``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.properties import PropertyViolation, Violation
from repro.core.buffer import SwitchBuffer
from repro.core.packet import Packet
from repro.core.registry import make_buffer
from repro.errors import ConfigurationError, ReproError

__all__ = ["Counterexample"]

#: Schema version of the serialized form.
COUNTEREXAMPLE_VERSION = 1


def _tuplify(value: Any) -> Any:
    """Recursively turn JSON arrays back into the tuples actions use."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def _listify(value: Any) -> Any:
    """Recursively turn action tuples into JSON-able lists."""
    if isinstance(value, tuple):
        return [_listify(item) for item in value]
    return value


@dataclass
class Counterexample:
    """One minimal violating trace, replayable and exportable."""

    #: ``system.config()`` of the transition system the trace drives.
    config: dict[str, Any]
    #: The minimal action sequence; the final action is the violating
    #: one when the violation arose from a transition (rather than from
    #: a state-level probe, in which case the trace merely reaches the
    #: violating state).
    actions: list[tuple[Any, ...]] = field(default_factory=list)
    violation: Violation | None = None

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "version": COUNTEREXAMPLE_VERSION,
            "config": dict(self.config),
            "actions": [_listify(action) for action in self.actions],
        }
        if self.violation is not None:
            payload["violation"] = {
                "prop": self.violation.prop,
                "message": self.violation.message,
                "kind": self.violation.kind,
            }
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Counterexample":
        version = payload.get("version")
        if version != COUNTEREXAMPLE_VERSION:
            raise ConfigurationError(
                f"unsupported counterexample version {version!r} "
                f"(expected {COUNTEREXAMPLE_VERSION})"
            )
        violation = None
        raw = payload.get("violation")
        if raw is not None:
            violation = Violation(
                prop=raw["prop"],
                message=raw["message"],
                kind=raw.get("kind", ""),
            )
        return cls(
            config=dict(payload["config"]),
            actions=[_tuplify(action) for action in payload["actions"]],
            violation=violation,
        )

    # -- replay --------------------------------------------------------

    def replay(self) -> Violation | None:
        """Re-execute the trace; return the violation it reproduces.

        Runs the exact state-level probes and transitions the model
        checker ran, in the same order, on freshly constructed buffers.
        Returns ``None`` if no property fails (e.g. the trace was found
        under a mutation that is no longer planted).
        """
        # Imported here: model.py imports this module at load time.
        from repro.analysis.model import build_system

        system = build_system(self.config)
        try:
            _key, payload = system.initial()
            for action in self.actions:
                system.probe(payload)
                _key, payload = system.apply(payload, action)
            system.probe(payload)
        except PropertyViolation as error:
            return error.violation
        return None

    # -- standalone script ---------------------------------------------

    def render_script(self) -> str:
        """A self-contained Python script that replays this trace."""
        document = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        expected = (
            self.violation.prop if self.violation is not None else None
        )
        return f'''#!/usr/bin/env python3
"""Replay a repro model-checker counterexample.

Generated by repro.analysis.counterexample; run with src/ on PYTHONPATH.
Exits 0 when the recorded violation reproduces, 1 otherwise.
"""

import json
import sys

from repro.analysis.counterexample import Counterexample

DOCUMENT = r"""
{document}
"""

EXPECTED_PROP = {expected!r}


def main() -> int:
    counterexample = Counterexample.from_dict(json.loads(DOCUMENT))
    violation = counterexample.replay()
    if violation is None:
        print("counterexample did NOT reproduce (no violation raised)")
        return 1
    print(f"reproduced: {{violation.render()}}")
    if EXPECTED_PROP is not None and violation.prop != EXPECTED_PROP:
        print(
            f"property mismatch: expected {{EXPECTED_PROP!r}}, "
            f"got {{violation.prop!r}}"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
'''

    # -- waveform export -----------------------------------------------

    def export(
        self, directory: str | Path, basename: str = "counterexample"
    ) -> dict[str, Path]:
        """Export the trace's datapath activity via ``repro.telemetry``.

        Mechanically replays the pushes/pops/retirements of the action
        sequence on telemetry-adopted buffers (one simulated cycle per
        action) and writes ``<basename>.vcd`` plus
        ``<basename>.trace.json`` into ``directory``.  Returns the two
        paths.  The replay is best-effort datapath driving — property
        checking happens in :meth:`replay`, not here — so an operation
        the hardware refuses simply ends the recording at that action.
        """
        from repro.telemetry import (
            TraceSession,
            write_chrome_trace,
            write_vcd,
        )

        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        session = TraceSession()
        buffers = self._build_traced(session)
        next_id = 0
        for step, action in enumerate(self.actions):
            session.begin_cycle(step)
            try:
                next_id = self._drive(buffers, action, next_id)
            except ReproError:
                break
        events = list(session.ring.events())
        vcd_path = write_vcd(events, target / f"{basename}.vcd")
        chrome_path = write_chrome_trace(
            events, target / f"{basename}.trace.json"
        )
        return {"vcd": vcd_path, "chrome": chrome_path}

    def _build_traced(self, session: Any) -> list[SwitchBuffer]:
        system = self.config.get("system")
        if system == "starvation":
            # Single-buffer arrive/depart trace, like "buffer".
            buffer = make_buffer(
                self.config["kind"],
                self.config["capacity"],
                self.config["num_outputs"],
            )
            return [session.adopt_buffer(buffer, "buffer0")]
        if system == "buffer":
            buffer = make_buffer(
                self.config["kind"],
                self.config["capacity"],
                self.config["num_outputs"],
            )
            return [session.adopt_buffer(buffer, "buffer0")]
        if system == "switch":
            return [
                session.adopt_buffer(
                    make_buffer(
                        self.config["kind"],
                        self.config["slots"],
                        self.config["num_ports"],
                    ),
                    f"in{port}",
                )
                for port in range(self.config["num_ports"])
            ]
        if system == "refinement-fifo":
            damq = make_buffer(
                "DAMQ", self.config["capacity"], self.config["num_outputs"]
            )
            fifo = make_buffer(
                "FIFO", self.config["capacity"], self.config["num_outputs"]
            )
            return [
                session.adopt_buffer(damq, "damq"),
                session.adopt_buffer(fifo, "fifo"),
            ]
        if system == "dominance":
            partitioned = make_buffer(
                self.config["kind"],
                self.config["capacity"],
                self.config["num_outputs"],
            )
            damq = make_buffer(
                "DAMQ", self.config["capacity"], self.config["num_outputs"]
            )
            return [
                session.adopt_buffer(partitioned, "partitioned"),
                session.adopt_buffer(damq, "damq"),
            ]
        raise ConfigurationError(f"unknown transition system {system!r}")

    def _drive(
        self,
        buffers: list[SwitchBuffer],
        action: tuple[Any, ...],
        next_id: int,
    ) -> int:
        system = self.config.get("system")
        name = action[0]
        if system == "switch":
            if name == "arbitrate":
                return next_id
            if name != "cycle":
                raise ConfigurationError(f"unknown action {action!r}")
            served = action[1]
            combo = action[2]
            for input_port, output_port in served:
                buffers[input_port].pop(output_port)
            for input_port, destination in enumerate(combo):
                if destination is None:
                    continue
                if buffers[input_port].can_accept(destination):
                    buffers[input_port].push(
                        Packet(
                            packet_id=next_id,
                            source=input_port,
                            destination=destination,
                        ),
                        destination,
                    )
                    next_id += 1
            return next_id
        # Single-buffer and lockstep-pair systems share an action shape.
        if name == "arrive":
            destination = int(action[1])
            packet = Packet(
                packet_id=next_id, source=0, destination=destination
            )
            for buffer in buffers:
                if buffer.can_accept(destination):
                    buffer.push(packet, destination)
            return next_id + 1
        if name == "depart":
            destination = int(action[1])
            for buffer in buffers:
                if buffer.peek(destination) is not None:
                    buffer.pop(destination)
            return next_id
        if name == "retire":
            for buffer in buffers:
                buffer.retire_slot()
            return next_id
        raise ConfigurationError(f"unknown action {action!r}")
