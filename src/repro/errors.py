"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class BufferFullError(ReproError):
    """Raised when a packet is offered to a buffer that cannot accept it.

    Under the *discarding* protocol the switch catches this condition and
    counts the packet as discarded; under the *blocking* protocol the
    upstream transmitter is stalled instead and the error should never
    propagate out of the flow-control layer.
    """


class BufferEmptyError(ReproError):
    """Raised when a read is attempted from a queue that holds no packet."""


class RoutingError(ReproError):
    """Raised when a packet cannot be routed (bad destination or table)."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with inconsistent parameters."""


class ProtocolError(ReproError):
    """Raised when a hardware-model component observes an illegal sequence.

    Examples: starting a new packet transmission on a link whose previous
    packet has not finished, or connecting a crossbar input to two outputs
    at once.
    """


class SimulationError(ReproError):
    """Raised when a simulation reaches an internally inconsistent state."""


class InvariantError(SimulationError):
    """Raised when a structural self-check finds corrupted state.

    Every ``check_invariants`` method raises this instead of using bare
    ``assert`` statements, so the checks keep firing under ``python -O``
    (which strips asserts) and fault-injection campaigns can distinguish
    *detected* corruption from ordinary simulation failures.
    """


class SanitizerError(SimulationError):
    """Raised by :meth:`repro.analysis.sanitizer.HardwareSanitizer.assert_clean`
    when a sanitized run recorded hardware-model violations (use-after-free,
    double-free, pointer cycles/leaks, or port-bandwidth overruns).  The
    sanitizer itself never raises mid-simulation — it records and keeps
    going, so one corruption yields a complete report."""


class WorkerFailedError(SimulationError):
    """Raised when a unit of work exhausted its worker-restart budget.

    Carries enough structure for a caller (or a service response) to say
    exactly what gave up: which task, after how many attempts, and the
    last on-disk checkpoint a further manual retry could resume from
    (``None`` when the task was not checkpointed).
    """

    def __init__(
        self,
        message: str,
        *,
        task_id: object = None,
        attempts: int = 0,
        checkpoint: str | None = None,
    ) -> None:
        super().__init__(message)
        self.task_id = task_id
        self.attempts = attempts
        self.checkpoint = checkpoint


class FaultError(SimulationError):
    """Raised when the fault-injection machinery itself is misconfigured or
    graceful degradation cannot proceed (e.g. retiring the last usable
    buffer slot)."""
