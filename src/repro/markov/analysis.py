"""High-level driver for the Table 2 Markov analysis.

Builds each switch chain once and evaluates it across the paper's traffic
grid, caching builders so repeated queries (tests, benchmarks, the table
generator) stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.markov.models import SwitchChainBuilder, SwitchSteadyState

__all__ = [
    "PAPER_TRAFFIC_GRID",
    "PAPER_BUFFER_SIZES",
    "DiscardTable",
    "discard_probability",
    "analyze_switch",
    "discard_table",
]

#: Traffic rates of Table 2, as fractions of link capacity.
PAPER_TRAFFIC_GRID = (0.25, 0.50, 0.75, 0.80, 0.85, 0.90, 0.95, 0.99)

#: Buffer sizes of Table 2 per architecture.  The statically partitioned
#: buffers only admit sizes divisible by the number of output ports.
PAPER_BUFFER_SIZES = {
    "FIFO": (2, 3, 4, 5, 6),
    "DAMQ": (2, 3, 4, 5, 6),
    "SAMQ": (2, 4, 6),
    "SAFC": (2, 4, 6),
}

_BUILDER_CACHE: dict[tuple[str, int, int], SwitchChainBuilder] = {}


def _builder(buffer_kind: str, slots: int, num_ports: int) -> SwitchChainBuilder:
    key = (buffer_kind.upper(), slots, num_ports)
    if key not in _BUILDER_CACHE:
        _BUILDER_CACHE[key] = SwitchChainBuilder(buffer_kind, slots, num_ports)
    return _BUILDER_CACHE[key]


def analyze_switch(
    buffer_kind: str, slots: int, traffic_rate: float, num_ports: int = 2
) -> SwitchSteadyState:
    """Full steady-state summary for one configuration point."""
    return _builder(buffer_kind, slots, num_ports).analyze(traffic_rate)


def discard_probability(
    buffer_kind: str, slots: int, traffic_rate: float, num_ports: int = 2
) -> float:
    """Probability an arriving packet is discarded (a Table 2 cell)."""
    return analyze_switch(
        buffer_kind, slots, traffic_rate, num_ports
    ).discard_probability


@dataclass(frozen=True)
class DiscardTable:
    """All discard probabilities for one buffer architecture.

    ``rows`` maps a buffer size to the tuple of discard probabilities in
    traffic-grid order.
    """

    buffer_kind: str
    traffic_grid: tuple[float, ...]
    rows: dict[int, tuple[float, ...]]


def discard_table(
    buffer_kind: str,
    sizes: tuple[int, ...] | None = None,
    traffic_grid: tuple[float, ...] = PAPER_TRAFFIC_GRID,
    num_ports: int = 2,
) -> DiscardTable:
    """Compute one architecture's block of Table 2."""
    kind = buffer_kind.upper()
    if sizes is None:
        sizes = PAPER_BUFFER_SIZES[kind]
    rows = {
        slots: tuple(
            discard_probability(kind, slots, rate, num_ports)
            for rate in traffic_grid
        )
        for slots in sizes
    }
    return DiscardTable(buffer_kind=kind, traffic_grid=traffic_grid, rows=rows)
