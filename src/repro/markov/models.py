"""Exact Markov chain of a small discarding switch (Section 4.1).

One :class:`SwitchChainBuilder` enumerates the joint state space of a
switch's input buffers and compiles the cycle transition *symbolically*:
each transition entry records its arbitration tie weight and how many
arrivals/non-arrivals it involves, so the numeric chain for any traffic
rate ``p`` is obtained by evaluating

    probability = tie_weight * (1 - p)**n_idle * (p / k)**n_arrivals

without re-walking the state space (``k`` = number of outputs; arrivals
pick a destination uniformly).  This makes the eight traffic columns of
Table 2 cheap once the state space is built.

Cycle model (documented choice — the paper leaves it unstated):
transmissions happen first, then arrivals, so a slot freed in a cycle can
hold a packet arriving in the same cycle, but a packet cannot arrive and
depart within one cycle.  A packet arriving at a buffer that cannot accept
it is discarded (the discarding protocol of the Markov analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigurationError
from repro.markov.arbitration import ServiceOutcome, service_outcomes
from repro.markov.chain import MarkovChain
from repro.markov.ports import PortModel, State, port_model

__all__ = ["SwitchChainBuilder", "SwitchSteadyState"]


@dataclass(frozen=True)
class SwitchSteadyState:
    """Steady-state performance of one (buffer kind, capacity, load) point."""

    buffer_kind: str
    slots_per_port: int
    traffic_rate: float
    discard_probability: float
    throughput: float
    mean_occupancy: float

    def describe(self) -> str:
        """One-line summary used by the experiment harness."""
        return (
            f"{self.buffer_kind:5s} slots={self.slots_per_port} "
            f"p={self.traffic_rate:.2f} discard={self.discard_probability:.4f} "
            f"throughput={self.throughput:.4f}"
        )


class SwitchChainBuilder:
    """Symbolic transition structure of an ``n×n`` discarding switch.

    Parameters
    ----------
    buffer_kind:
        One of ``FIFO``, ``DAMQ``, ``SAMQ``, ``SAFC``.
    slots_per_port:
        Buffer capacity at each input port, in packets.
    num_ports:
        Switch arity (2 for the paper's Markov analysis; the state space
        grows as ``states_per_port ** num_ports``, so keep it small).
    """

    def __init__(
        self, buffer_kind: str, slots_per_port: int, num_ports: int = 2
    ) -> None:
        if num_ports < 2:
            raise ConfigurationError("switch needs at least two ports")
        self.buffer_kind = buffer_kind.upper()
        self.slots_per_port = slots_per_port
        self.num_ports = num_ports
        self.model: PortModel = port_model(
            self.buffer_kind, slots_per_port, num_outputs=num_ports
        )
        port_states = self.model.enumerate_states()
        self.states = list(product(port_states, repeat=num_ports))
        self._index = {state: i for i, state in enumerate(self.states)}
        self._compile()

    # ------------------------------------------------------------------
    # Symbolic compilation
    # ------------------------------------------------------------------

    def _compile(self) -> None:
        """Walk every (state, service, arrival) combination once."""
        sources: list[int] = []
        targets: list[int] = []
        tie_weights: list[float] = []
        idle_counts: list[int] = []
        arrival_counts: list[int] = []
        discard_counts: list[int] = []
        service_counts: list[int] = []

        # Per-port arrival options: None (no arrival) or a destination.
        arrival_options: list[int | None] = [None] + list(range(self.num_ports))

        # The arbitration decision depends on the joint state only through
        # its queue-length signature, which has a tiny domain — memoizing
        # on it cuts the compile time of the largest FIFO chains ~50x.
        outcome_cache: dict[
            tuple[tuple[int, ...], ...], list[ServiceOutcome]
        ] = {}

        def outcomes_for(
            joint_state: tuple[State, ...],
        ) -> list[ServiceOutcome]:
            key = tuple(
                self.model.queue_lengths(port_state) for port_state in joint_state
            )
            cached = outcome_cache.get(key)
            if cached is None:
                cached = service_outcomes(self.model, joint_state)
                outcome_cache[key] = cached
            return cached

        for source_index, joint_state in enumerate(self.states):
            for weight, served in outcomes_for(joint_state):
                after_service = list(joint_state)
                for input_port, output in served:
                    after_service[input_port] = self.model.serve(
                        after_service[input_port], output
                    )
                for combo in product(arrival_options, repeat=self.num_ports):
                    after_arrival = list(after_service)
                    idle = 0
                    arrivals = 0
                    discards = 0
                    for input_port, destination in enumerate(combo):
                        if destination is None:
                            idle += 1
                            continue
                        arrivals += 1
                        if self.model.can_accept(
                            after_arrival[input_port], destination
                        ):
                            after_arrival[input_port] = self.model.accept(
                                after_arrival[input_port], destination
                            )
                        else:
                            discards += 1
                    sources.append(source_index)
                    targets.append(self._index[tuple(after_arrival)])
                    tie_weights.append(float(weight))
                    idle_counts.append(idle)
                    arrival_counts.append(arrivals)
                    discard_counts.append(discards)
                    service_counts.append(len(served))

        self._sources = np.array(sources, dtype=np.int64)
        self._targets = np.array(targets, dtype=np.int64)
        self._tie = np.array(tie_weights)
        self._idle = np.array(idle_counts, dtype=np.int64)
        self._arrivals = np.array(arrival_counts, dtype=np.int64)
        self._discards = np.array(discard_counts, dtype=np.int64)
        self._serves = np.array(service_counts, dtype=np.int64)

    # ------------------------------------------------------------------
    # Numeric evaluation
    # ------------------------------------------------------------------

    def chain(self, traffic_rate: float) -> MarkovChain:
        """The numeric Markov chain at traffic rate ``traffic_rate``."""
        probabilities = self._probabilities(traffic_rate)
        n = len(self.states)
        matrix = sp.coo_matrix(
            (probabilities, (self._sources, self._targets)), shape=(n, n)
        ).tocsr()
        return MarkovChain(matrix)

    def _probabilities(self, traffic_rate: float) -> np.ndarray:
        if not 0.0 <= traffic_rate <= 1.0:
            raise ConfigurationError(f"traffic rate out of range: {traffic_rate}")
        p_arrival = traffic_rate / self.num_ports  # per-destination rate
        return (
            self._tie
            * (1.0 - traffic_rate) ** self._idle
            * p_arrival**self._arrivals
        )

    def analyze(self, traffic_rate: float) -> SwitchSteadyState:
        """Steady-state discard probability, throughput and occupancy.

        ``discard_probability`` is the paper's Table 2 metric: the chance a
        given arriving packet is dropped.  ``throughput`` is packets
        transmitted per cycle per output port; flow conservation
        (arrivals accepted = departures) holds in steady state and is
        checked by the test suite.
        """
        chain = self.chain(traffic_rate)
        pi = chain.steady_state()
        probabilities = self._probabilities(traffic_rate)
        n = len(self.states)
        expected_discards = np.zeros(n)
        expected_serves = np.zeros(n)
        np.add.at(
            expected_discards, self._sources, probabilities * self._discards
        )
        np.add.at(expected_serves, self._sources, probabilities * self._serves)
        arrivals_per_cycle = self.num_ports * traffic_rate
        discards_per_cycle = float(pi @ expected_discards)
        serves_per_cycle = float(pi @ expected_serves)
        occupancy = float(
            pi
            @ np.array(
                [
                    sum(self.model.occupancy(port) for port in joint)
                    for joint in self.states
                ]
            )
        )
        discard_probability = (
            discards_per_cycle / arrivals_per_cycle if arrivals_per_cycle else 0.0
        )
        return SwitchSteadyState(
            buffer_kind=self.buffer_kind,
            slots_per_port=self.slots_per_port,
            traffic_rate=traffic_rate,
            discard_probability=discard_probability,
            throughput=serves_per_cycle / self.num_ports,
            mean_occupancy=occupancy,
        )
