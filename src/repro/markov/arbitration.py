"""Arbitration model for the Markov analysis (Section 4.1).

The paper states the policy: "send two packets if at all possible, or to
send a packet from the longest queue if not".  This module enumerates the
possible service decisions for a joint buffer state:

1. collect every *request* — an (input, output) pair for which the input's
   buffer can offer a packet;
2. enumerate the feasible service sets: at most one packet per output, and
   at most ``max_serves_per_cycle`` packets per input (one, except SAFC);
3. keep the sets of maximum size (send as many packets as possible);
4. among those, keep the sets serving the longest queues (comparing the
   multiset of served queue lengths, longest first);
5. split probability uniformly over any remaining ties, keeping the chain
   symmetric where the hardware would alternate.

The enumeration is exact and exhaustive; it is intended for the small
switches of the Markov analysis (2×2 in the paper), where the request set
has at most four elements.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Sequence
from fractions import Fraction

from repro.markov.ports import PortModel

__all__ = ["ServiceOutcome", "service_outcomes"]

#: One service decision: probability weight and the (input, output) pairs
#: transmitted this cycle.
ServiceOutcome = tuple[Fraction, tuple[tuple[int, int], ...]]


def service_outcomes(
    model: PortModel, port_states: Sequence[Hashable]
) -> list[ServiceOutcome]:
    """All service decisions for one joint state, with tie probabilities.

    Returns a list of ``(probability, served_pairs)`` whose probabilities
    sum to 1.  ``served_pairs`` is sorted for determinism.
    """
    lengths = [model.queue_lengths(state) for state in port_states]
    requests = [
        (input_port, output)
        for input_port, port_lengths in enumerate(lengths)
        for output, length in enumerate(port_lengths)
        if length > 0
    ]
    if not requests:
        return [(Fraction(1), ())]

    feasible: list[tuple[tuple[int, int], ...]] = []
    for size in range(1, len(requests) + 1):
        for subset in itertools.combinations(requests, size):
            outputs = [pair[1] for pair in subset]
            if len(set(outputs)) != len(outputs):
                continue
            per_input: dict[int, int] = {}
            for input_port, _ in subset:
                per_input[input_port] = per_input.get(input_port, 0) + 1
            if any(
                count > model.max_serves_per_cycle
                for count in per_input.values()
            ):
                continue
            feasible.append(subset)

    max_size = max(len(subset) for subset in feasible)
    candidates = [subset for subset in feasible if len(subset) == max_size]

    def score(subset: tuple[tuple[int, int], ...]) -> tuple[int, ...]:
        """Served queue lengths, longest first (the arbitration metric)."""
        return tuple(
            sorted(
                (lengths[input_port][output] for input_port, output in subset),
                reverse=True,
            )
        )

    best = max(score(subset) for subset in candidates)
    winners = sorted(
        tuple(sorted(subset)) for subset in candidates if score(subset) == best
    )
    weight = Fraction(1, len(winners))
    return [(weight, subset) for subset in winners]
