"""Generic finite discrete-time Markov chain with a sparse solver.

The Table 2 analysis needs steady-state distributions of chains with up to
~16k states (two FIFO buffers of six slots).  Chains are built as sparse
transition matrices and solved directly; a power-iteration fallback guards
against singular corner cases (e.g. zero traffic, where the chain is not
irreducible).
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import ConfigurationError

__all__ = ["MarkovChain"]


class MarkovChain:
    """A finite DTMC given by a row-stochastic sparse matrix.

    Parameters
    ----------
    transition:
        ``(n, n)`` sparse matrix with ``transition[i, j]`` the probability
        of moving from state ``i`` to state ``j``.  Rows must sum to 1
        (validated to ``tolerance``).
    """

    def __init__(self, transition: sp.spmatrix, tolerance: float = 1e-9) -> None:
        matrix = sp.csr_matrix(transition)
        if matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError("transition matrix must be square")
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        if not np.allclose(row_sums, 1.0, atol=1e-6):
            worst = int(np.argmax(np.abs(row_sums - 1.0)))
            raise ConfigurationError(
                f"row {worst} of transition matrix sums to {row_sums[worst]!r}"
            )
        if (matrix.data < -tolerance).any():
            raise ConfigurationError("transition matrix has negative entries")
        self.matrix = matrix
        self.num_states = matrix.shape[0]

    def steady_state(self) -> np.ndarray:
        """Stationary distribution ``pi`` with ``pi @ P = pi``.

        Solves the linear system ``(P^T - I) pi = 0`` with the
        normalization ``sum(pi) = 1`` replacing one (dependent) equation.
        Falls back to power iteration if the direct solve fails, which
        also yields *a* stationary distribution for reducible chains
        (started from the uniform distribution).
        """
        n = self.num_states
        if n == 1:
            return np.array([1.0])
        if n > 64:
            pi = self._arpack()
            if pi is not None:
                return pi
        pi = self._direct_solve()
        if pi is not None:
            return pi
        return self._power_iteration()

    def _arpack(self) -> np.ndarray | None:
        """Dominant left eigenvector via ARPACK.

        Matrix-free Arnoldi avoids the LU fill-in that makes a direct
        solve of the larger FIFO chains (~16k states) take half a minute;
        ARPACK converges in milliseconds for these well-separated spectra.
        """
        try:
            values, vectors = spla.eigs(
                self.matrix.T.astype(float), k=1, which="LM", tol=1e-13
            )
        except Exception:
            return None
        if abs(values[0] - 1.0) > 1e-6:
            return None
        pi = np.real(vectors[:, 0])
        if pi.sum() < 0:
            pi = -pi
        # A genuine stationary vector is single-signed up to round-off.
        if pi.min() < -1e-8 * max(pi.max(), 1.0):
            return None
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if not np.isfinite(total) or total <= 0:
            return None
        return pi / total

    def _direct_solve(self) -> np.ndarray | None:
        """Sparse LU on the (n-1) principal subsystem with pi[n-1] = 1."""
        n = self.num_states
        a = (self.matrix.T - sp.identity(n, format="csc")).tocsc()
        sub = a[: n - 1, : n - 1]
        rhs = -np.asarray(a[: n - 1, n - 1].todense()).ravel()
        try:
            with warnings.catch_warnings():
                # A reducible chain makes the system singular; fall through
                # to power iteration instead of warning.
                warnings.simplefilter("error", spla.MatrixRankWarning)
                head = spla.spsolve(sub, rhs)
        except Exception:  # singular matrix and friends
            return None
        pi = np.concatenate([head, [1.0]])
        if not np.all(np.isfinite(pi)) or pi.min() <= -1e-8:
            return None
        pi = np.clip(pi, 0.0, None)
        return pi / pi.sum()

    def _power_iteration(
        self, max_iterations: int = 200_000, tolerance: float = 1e-12
    ) -> np.ndarray:
        """Stationary distribution by repeated multiplication."""
        pi = np.full(self.num_states, 1.0 / self.num_states)
        transposed = self.matrix.T.tocsr()
        for _ in range(max_iterations):
            updated = transposed @ pi
            if np.abs(updated - pi).max() < tolerance:
                return updated / updated.sum()
            pi = updated
        return pi / pi.sum()

    def expected(self, per_state_value: np.ndarray) -> float:
        """Steady-state expectation of a per-state quantity."""
        values = np.asarray(per_state_value, dtype=float)
        if values.shape != (self.num_states,):
            raise ConfigurationError(
                f"expected a vector of length {self.num_states}"
            )
        return float(self.steady_state() @ values)
