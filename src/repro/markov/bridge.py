"""Bridge from an explored reachable-state graph to a Markov chain.

The model checker (:mod:`repro.analysis.model`) explores the concrete
register-level switch in ``markov`` mode and records every transition as
``(source, target, tie weight, idle ports, arriving ports)``.  This
module turns that edge list into the exact transition matrix of the
induced discrete-time Markov chain: each edge contributes

``tie * (1 - p) ** idle * (p / num_ports) ** arrivals``

where ``p`` is the per-port traffic rate and the tie weight (an exact
:class:`~fractions.Fraction`) splits probability uniformly among
equally-ranked longest-queue service sets — the same decomposition
:mod:`repro.markov.models` uses symbolically.  Agreement of the two
stationary distributions is therefore an end-to-end cross-check of the
buffer implementations, the arbitration policy and the symbolic chain
compiler against one another.

Kept separate from :mod:`repro.analysis` so the dependency points one
way only: the analysis package imports this bridge lazily, and nothing
here imports the analysis package.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigurationError
from repro.markov.chain import MarkovChain

__all__ = ["WeightedEdge", "chain_from_graph"]

#: (source state, target state, tie weight, idle ports, arriving ports).
WeightedEdge = tuple[int, int, Fraction, int, int]


def chain_from_graph(
    num_states: int,
    edges: list[WeightedEdge],
    rate: float,
    num_ports: int,
    *,
    tolerance: float = 1e-9,
) -> MarkovChain:
    """Assemble the Markov chain induced by an explored state graph.

    Parallel edges (several service/arrival outcomes joining the same
    state pair) accumulate.  Row stochasticity is validated by
    :class:`~repro.markov.chain.MarkovChain` itself, so a dropped or
    double-counted transition in the exploration surfaces here as a
    row-sum error rather than a silently wrong distribution.
    """
    if num_states <= 0:
        raise ConfigurationError("graph must contain at least one state")
    if not 0.0 < rate < 1.0:
        raise ConfigurationError(
            f"traffic rate must lie strictly in (0, 1), got {rate}"
        )
    if num_ports <= 0:
        raise ConfigurationError(f"invalid port count {num_ports}")
    per_port = rate / num_ports
    idle_probability = 1.0 - rate
    matrix = sp.dok_matrix((num_states, num_states), dtype=np.float64)
    for source, target, tie, idle, arrivals in edges:
        if not 0 <= source < num_states or not 0 <= target < num_states:
            raise ConfigurationError(
                f"edge ({source} -> {target}) outside the {num_states}-state "
                f"graph"
            )
        if idle < 0 or arrivals < 0 or idle + arrivals != num_ports:
            raise ConfigurationError(
                f"edge ({source} -> {target}) labels {idle} idle + "
                f"{arrivals} arriving ports on a {num_ports}-port switch"
            )
        probability = (
            float(tie)
            * idle_probability**idle
            * per_port**arrivals
        )
        matrix[source, target] += probability
    return MarkovChain(matrix.tocsr(), tolerance=tolerance)
