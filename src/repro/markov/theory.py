"""Closed-form reference results from the input-queueing literature.

The paper leans on Karol, Hluchyj & Morgan (GLOBECOM '86): with FIFO
input queues, head-of-line blocking caps an ``n×n`` switch's throughput
well below 1.  These constants give the library an analytic anchor — the
test suite checks that the exact FIFO chains converge to the n = 2 limit
as buffers grow, and that the DAMQ (which has no head-of-line blocking)
exceeds it.

``HOL_SATURATION`` lists the saturation throughputs of saturated FIFO
input queues per switch size (Karol et al., Table I), ending at the
famous ``2 - sqrt(2) ≈ 0.586`` asymptote.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = ["HOL_SATURATION", "HOL_ASYMPTOTE", "hol_saturation_throughput"]

#: Saturation throughput of an n×n switch with saturated FIFO input
#: queues (Karol/Hluchyj/Morgan 1986, Table I).
HOL_SATURATION: dict[int, float] = {
    1: 1.0000,
    2: 0.7500,
    3: 0.6825,
    4: 0.6553,
    5: 0.6399,
    6: 0.6302,
    7: 0.6234,
    8: 0.6184,
}

#: The n → ∞ head-of-line blocking limit, 2 - sqrt(2).
HOL_ASYMPTOTE = 2.0 - math.sqrt(2.0)


def hol_saturation_throughput(n: int) -> float:
    """Head-of-line saturation throughput for an ``n×n`` FIFO switch.

    Exact published values for ``n <= 8``; the asymptotic limit is
    returned for larger switches (correct to within ~3% at n = 16 and
    approaching exactness as n grows).
    """
    if n < 1:
        raise ConfigurationError("switch size must be positive")
    if n in HOL_SATURATION:
        return HOL_SATURATION[n]
    return HOL_ASYMPTOTE
