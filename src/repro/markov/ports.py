"""State-space models of one input port's buffer, for the Markov analysis.

Under the paper's "long clock" assumption (fixed-length packets that
completely arrive or completely depart within one cycle) a buffer's state
collapses to a small discrete description:

* **FIFO** — the ordered tuple of queued packets' destinations (order
  matters: only the head is servable);
* **DAMQ** — the per-destination packet counts ``(n_0, …)`` with their sum
  bounded by the shared capacity (order within a destination queue is
  irrelevant because service is FIFO per destination);
* **SAMQ / SAFC** — per-destination counts each bounded by the static
  partition size.

These classes provide pure-functional state transitions (states are
hashable tuples) that :mod:`repro.markov.models` composes into the 2×2
switch chain.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from repro.errors import ConfigurationError

__all__ = [
    "State",
    "PortModel",
    "FifoPortModel",
    "DamqPortModel",
    "SamqPortModel",
    "SafcPortModel",
    "port_model",
]

#: Every architecture's buffer state is a tuple of small ints: the
#: destination sequence (FIFO) or the per-destination counts (the rest).
State = tuple[int, ...]


class PortModel(ABC):
    """Pure-functional model of one buffer's state under the long clock."""

    kind: str = "abstract"

    #: How many packets the port can transmit in one cycle (SAFC: one per
    #: output; everything else: one total).
    max_serves_per_cycle: int = 1

    def __init__(self, capacity: int, num_outputs: int = 2) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be at least 1")
        if num_outputs < 2:
            raise ConfigurationError("need at least two outputs")
        self.capacity = capacity
        self.num_outputs = num_outputs

    @abstractmethod
    def enumerate_states(self) -> list[State]:
        """Every reachable buffer state, starting with the empty state."""

    @abstractmethod
    def queue_lengths(self, state: State) -> tuple[int, ...]:
        """Arbitration metric per output: length of the servable queue.

        Zero means the port cannot offer a packet for that output this
        cycle (empty queue, or — FIFO — a head bound elsewhere).
        """

    @abstractmethod
    def serve(self, state: State, output: int) -> State:
        """State after transmitting the head packet for ``output``."""

    @abstractmethod
    def can_accept(self, state: State, destination: int) -> bool:
        """Whether an arriving packet routed to ``destination`` fits."""

    @abstractmethod
    def accept(self, state: State, destination: int) -> State:
        """State after storing a packet routed to ``destination``."""

    @abstractmethod
    def occupancy(self, state: State) -> int:
        """Packets held in ``state`` (for sanity checks and tests)."""

    def empty_state(self) -> State:
        """The state of a freshly reset buffer."""
        return self.enumerate_states()[0]


class FifoPortModel(PortModel):
    """FIFO buffer: state is the destination sequence, head first."""

    kind = "FIFO"

    def enumerate_states(self) -> list[State]:
        states: list[State] = []
        for length in range(self.capacity + 1):
            states.extend(
                itertools.product(range(self.num_outputs), repeat=length)
            )
        return states

    def queue_lengths(self, state: State) -> tuple[int, ...]:
        lengths = [0] * self.num_outputs
        if state:
            # The whole buffer counts as one queue attributed to the head
            # packet's destination — the only packet FIFO can offer.
            lengths[state[0]] = len(state)
        return tuple(lengths)

    def serve(self, state: State, output: int) -> State:
        if not state or state[0] != output:
            raise ConfigurationError(f"state {state} cannot serve output {output}")
        return state[1:]

    def can_accept(self, state: State, destination: int) -> bool:
        return len(state) < self.capacity

    def accept(self, state: State, destination: int) -> State:
        if not self.can_accept(state, destination):
            raise ConfigurationError(f"state {state} is full")
        return state + (destination,)

    def occupancy(self, state: State) -> int:
        return len(state)


class DamqPortModel(PortModel):
    """DAMQ buffer: per-destination counts sharing ``capacity`` slots."""

    kind = "DAMQ"

    def enumerate_states(self) -> list[State]:
        states: list[State] = []
        for counts in itertools.product(
            range(self.capacity + 1), repeat=self.num_outputs
        ):
            if sum(counts) <= self.capacity:
                states.append(counts)
        states.sort(key=lambda counts: (sum(counts), counts))
        return states

    def queue_lengths(self, state: State) -> tuple[int, ...]:
        return tuple(state)

    def serve(self, state: State, output: int) -> State:
        if state[output] == 0:
            raise ConfigurationError(f"state {state} cannot serve output {output}")
        served = list(state)
        served[output] -= 1
        return tuple(served)

    def can_accept(self, state: State, destination: int) -> bool:
        return sum(state) < self.capacity

    def accept(self, state: State, destination: int) -> State:
        if not self.can_accept(state, destination):
            raise ConfigurationError(f"state {state} is full")
        accepted = list(state)
        accepted[destination] += 1
        return tuple(accepted)

    def occupancy(self, state: State) -> int:
        return sum(state)


class SamqPortModel(PortModel):
    """SAMQ buffer: per-destination counts with static partitions."""

    kind = "SAMQ"

    def __init__(self, capacity: int, num_outputs: int = 2) -> None:
        super().__init__(capacity, num_outputs)
        if capacity % num_outputs != 0:
            raise ConfigurationError(
                f"SAMQ capacity {capacity} not divisible by {num_outputs}"
            )
        self.partition = capacity // num_outputs

    def enumerate_states(self) -> list[State]:
        states = list(
            itertools.product(range(self.partition + 1), repeat=self.num_outputs)
        )
        states.sort(key=lambda counts: (sum(counts), counts))
        return states

    def queue_lengths(self, state: State) -> tuple[int, ...]:
        return tuple(state)

    def serve(self, state: State, output: int) -> State:
        if state[output] == 0:
            raise ConfigurationError(f"state {state} cannot serve output {output}")
        served = list(state)
        served[output] -= 1
        return tuple(served)

    def can_accept(self, state: State, destination: int) -> bool:
        return state[destination] < self.partition

    def accept(self, state: State, destination: int) -> State:
        if not self.can_accept(state, destination):
            raise ConfigurationError(
                f"partition {destination} of state {state} is full"
            )
        accepted = list(state)
        accepted[destination] += 1
        return tuple(accepted)

    def occupancy(self, state: State) -> int:
        return sum(state)


class SafcPortModel(SamqPortModel):
    """SAFC buffer: SAMQ storage, but every queue can transmit each cycle."""

    kind = "SAFC"

    def __init__(self, capacity: int, num_outputs: int = 2) -> None:
        super().__init__(capacity, num_outputs)
        self.max_serves_per_cycle = num_outputs


_PORT_MODELS: dict[str, type[PortModel]] = {
    "FIFO": FifoPortModel,
    "DAMQ": DamqPortModel,
    "SAMQ": SamqPortModel,
    "SAFC": SafcPortModel,
}


def port_model(kind: str, capacity: int, num_outputs: int = 2) -> PortModel:
    """Construct a port model by buffer-architecture name."""
    try:
        cls = _PORT_MODELS[kind.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown buffer type {kind!r}; expected one of {sorted(_PORT_MODELS)}"
        ) from None
    return cls(capacity, num_outputs)
