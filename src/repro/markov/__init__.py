"""Exact Markov-chain analysis of small discarding switches (Section 4.1)."""

from repro.markov.analysis import (
    PAPER_BUFFER_SIZES,
    PAPER_TRAFFIC_GRID,
    DiscardTable,
    analyze_switch,
    discard_probability,
    discard_table,
)
from repro.markov.arbitration import service_outcomes
from repro.markov.chain import MarkovChain
from repro.markov.models import SwitchChainBuilder, SwitchSteadyState
from repro.markov.theory import (
    HOL_ASYMPTOTE,
    HOL_SATURATION,
    hol_saturation_throughput,
)
from repro.markov.validation import (
    LongClockSwitchSimulator,
    ValidationReport,
    validate,
)
from repro.markov.ports import (
    DamqPortModel,
    FifoPortModel,
    PortModel,
    SafcPortModel,
    SamqPortModel,
    port_model,
)

__all__ = [
    "DamqPortModel",
    "DiscardTable",
    "FifoPortModel",
    "HOL_ASYMPTOTE",
    "HOL_SATURATION",
    "LongClockSwitchSimulator",
    "hol_saturation_throughput",
    "MarkovChain",
    "ValidationReport",
    "validate",
    "PAPER_BUFFER_SIZES",
    "PAPER_TRAFFIC_GRID",
    "PortModel",
    "SafcPortModel",
    "SamqPortModel",
    "SwitchChainBuilder",
    "SwitchSteadyState",
    "analyze_switch",
    "discard_probability",
    "discard_table",
    "port_model",
    "service_outcomes",
]
