"""Cross-validation of the Markov chains against direct simulation.

The Markov analysis (Section 4.1) and the network simulator (Section 4.2)
are independent implementations of the same switch behaviour.  This module
closes the loop: a Monte-Carlo simulator of a *single* discarding switch
under exactly the long-clock assumptions of the chains — fixed-length
packets, transmit-then-receive cycle order, "send two if possible, else
longest queue" arbitration with uniformly split ties — whose measured
discard rate must converge to the chain's steady-state prediction.

Used by the test suite as a powerful consistency check (an error in either
the chain compiler or the arbitration enumeration shows up as a
statistically significant disagreement) and by the
``markov_vs_simulation`` example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.markov.arbitration import service_outcomes
from repro.markov.models import SwitchChainBuilder
from repro.markov.ports import PortModel, port_model
from repro.utils.rng import RandomStream

__all__ = ["LongClockSwitchSimulator", "ValidationReport", "validate"]


class LongClockSwitchSimulator:
    """Monte-Carlo twin of one :class:`SwitchChainBuilder` configuration.

    State evolution reuses the *same* pure-functional port models and the
    same arbitration enumeration as the chain compiler; only the
    probabilistic choices (arrivals, tie-breaks) are sampled instead of
    enumerated.  Agreement therefore validates the chain assembly and the
    steady-state solver — the parts that are easy to get subtly wrong.
    """

    def __init__(
        self,
        buffer_kind: str,
        slots_per_port: int,
        traffic_rate: float,
        num_ports: int = 2,
        seed: int = 7,
    ) -> None:
        self.model: PortModel = port_model(
            buffer_kind, slots_per_port, num_outputs=num_ports
        )
        self.num_ports = num_ports
        self.traffic_rate = traffic_rate
        self.rng = RandomStream(seed, f"longclock/{buffer_kind}/{slots_per_port}")
        self.states = [self.model.empty_state() for _ in range(num_ports)]
        self.arrivals = 0
        self.discards = 0
        self.serves = 0
        self.cycles = 0

    def step(self) -> None:
        """One long-clock cycle: transmit, then receive."""
        outcomes = service_outcomes(self.model, self.states)
        if len(outcomes) == 1:
            served = outcomes[0][1]
        else:
            # Ties were enumerated with equal weights; sample one.
            served = self.rng.choice([outcome[1] for outcome in outcomes])
        for input_port, output in served:
            self.states[input_port] = self.model.serve(
                self.states[input_port], output
            )
        self.serves += len(served)
        for input_port in range(self.num_ports):
            if not self.rng.bernoulli(self.traffic_rate):
                continue
            self.arrivals += 1
            destination = self.rng.randint(0, self.num_ports)
            if self.model.can_accept(self.states[input_port], destination):
                self.states[input_port] = self.model.accept(
                    self.states[input_port], destination
                )
            else:
                self.discards += 1
        self.cycles += 1

    def run(self, cycles: int) -> None:
        """Advance a fixed number of cycles."""
        for _ in range(cycles):
            self.step()

    @property
    def discard_rate(self) -> float:
        """Fraction of arrived packets that were discarded."""
        return self.discards / self.arrivals if self.arrivals else 0.0

    @property
    def throughput(self) -> float:
        """Packets transmitted per cycle per output port."""
        if self.cycles == 0:
            return 0.0
        return self.serves / (self.cycles * self.num_ports)


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one analytic-vs-Monte-Carlo comparison."""

    buffer_kind: str
    slots_per_port: int
    traffic_rate: float
    analytic_discard: float
    simulated_discard: float
    analytic_throughput: float
    simulated_throughput: float
    cycles: int

    @property
    def discard_error(self) -> float:
        """Absolute difference between prediction and measurement."""
        return abs(self.analytic_discard - self.simulated_discard)

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.buffer_kind:5s} slots={self.slots_per_port} "
            f"p={self.traffic_rate:.2f}: analytic {self.analytic_discard:.4f} "
            f"vs simulated {self.simulated_discard:.4f} "
            f"({self.cycles} cycles)"
        )


def validate(
    buffer_kind: str,
    slots_per_port: int,
    traffic_rate: float,
    cycles: int = 200_000,
    seed: int = 7,
) -> ValidationReport:
    """Compare one chain's prediction against a Monte-Carlo run."""
    builder = SwitchChainBuilder(buffer_kind, slots_per_port)
    analytic = builder.analyze(traffic_rate)
    simulator = LongClockSwitchSimulator(
        buffer_kind, slots_per_port, traffic_rate, seed=seed
    )
    simulator.run(cycles)
    return ValidationReport(
        buffer_kind=buffer_kind.upper(),
        slots_per_port=slots_per_port,
        traffic_rate=traffic_rate,
        analytic_discard=analytic.discard_probability,
        simulated_discard=simulator.discard_rate,
        analytic_throughput=analytic.throughput,
        simulated_throughput=simulator.throughput,
        cycles=cycles,
    )
