"""Process-pool map over independent simulation runs, with memoization.

Every cell of the paper's tables is one :class:`NetworkConfig` simulated
in isolation; all randomness derives from ``config.seed`` through named
substreams, so a run's result does not depend on which process executes
it or in what order.  ``parallel_simulate`` exploits that: it fans a list
of configs over a :class:`~concurrent.futures.ProcessPoolExecutor` and
returns results in input order, byte-identical to the serial loop.

The same purity makes the work *memoizable*.  When an experiment runs
under an active :mod:`repro.cache` context, :func:`parallel_map` keys
each unit of work by its canonical payload and the source-tree
fingerprint, serves hits straight from the content-addressed store, and
dispatches only the misses to the pool — a warm re-run of an unchanged
suite performs zero simulations.

``jobs=1`` (the default everywhere) bypasses the pool entirely — the
serial path runs the exact same ``simulate`` calls in the parent process,
which keeps single-job behaviour free of multiprocessing overhead and
makes the serial/parallel equivalence trivial to test.

A worker that dies (segfault, OOM kill, ``os._exit``) surfaces as a
:class:`~repro.errors.WorkerFailedError` rather than a hang or a raw
``BrokenProcessPool`` — unless the active context has checkpointing
configured, in which case the still-pending tasks are retried in a fresh
pool (after a deterministic-jitter backoff, budget bounded by
:data:`RESTART_POLICY`) and each replacement worker resumes its
simulation from the dead worker's last on-disk checkpoint instead of
starting over.  When the budget runs out the error names the task, its
attempt count and the checkpoint a manual retry could resume from.

A service-grade alternative exists for the pool itself: when the active
:class:`~repro.cache.runtime.CacheContext` carries a ``dispatcher``, all
execution is delegated to it — :mod:`repro.service` installs its
supervised worker pool this way, so the same experiment code runs under
heartbeat monitoring and per-task deadlines without changing here.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.cache import runtime
from repro.cache.keys import cache_key, canonical_json
from repro.utils.digest import digest_json
from repro.errors import ConfigurationError, WorkerFailedError
from repro.utils.backoff import BackoffPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.network.metrics import SimulationResult
    from repro.network.simulator import NetworkConfig

__all__ = [
    "RESTART_POLICY",
    "parallel_map",
    "parallel_simulate",
    "resolve_jobs",
    "reset_simulated_cycles",
    "simulated_cycles",
]

#: Network cycles simulated through this module since the last reset
#: (parent-process view; the perf harness reads this to report
#: simulated-cycles-per-second).  Cache hits perform no simulation and
#: are not counted.
_cycles_simulated = 0

#: Restart budget and delays for pool recovery after a worker death.
#: Shared shape with :mod:`repro.service` (which uses its own seconds-
#: tuned instance): exponential with deterministic jitter so several
#: resuming pools do not stampede the disk in lockstep.  ``max_attempts``
#: counts attempts per task: the first run plus two pool restarts —
#: matching the historical ``_POOL_RETRIES = 2``.
RESTART_POLICY = BackoffPolicy(
    base=0.05, factor=2.0, cap_multiple=8.0, max_attempts=3, jitter=0.5
)


def simulated_cycles() -> int:
    """Network cycles routed through :func:`parallel_simulate` so far."""
    return _cycles_simulated


def reset_simulated_cycles() -> None:
    """Zero the cycle counter (the harness calls this per experiment)."""
    global _cycles_simulated
    _cycles_simulated = 0


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a jobs request: ``None``/``0`` means one per CPU."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be positive, got {jobs}")
    return jobs


def _task_checkpoint(item: Any) -> str | None:
    """The checkpoint path a task item carries, when it carries one.

    :func:`parallel_simulate` encodes checkpointed work as a 5-tuple
    ending in the checkpoint path; anything else is uncheckpointed.
    """
    if isinstance(item, tuple) and len(item) == 5 and isinstance(item[4], str):
        return item[4]
    return None


def _dispatch(
    fn: Callable[[Any], Any],
    items: list[Any],
    jobs: int,
    resumable: bool,
) -> list[Any]:
    """Execute every item, in input order, with bounded pool restarts.

    When ``resumable`` (the active context has checkpointing configured),
    a worker death starts a fresh pool after a :data:`RESTART_POLICY`
    backoff; completed results are kept and only the still-pending items
    are resubmitted (their workers resume from on-disk checkpoints when
    the tasks carry them).  A task that exhausts the policy's attempt
    budget — or any death when ``resumable`` is false, preserving the
    uncached fail-fast behaviour — raises :class:`WorkerFailedError`
    naming the task, its attempt count and its last checkpoint.
    """
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    results: list[Any] = [None] * len(items)
    pending = list(range(len(items)))
    attempts = dict.fromkeys(pending, 0)
    while True:
        for index in pending:
            attempts[index] += 1
        try:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                futures = {pool.submit(fn, items[i]): i for i in pending}
                for future in as_completed(futures):
                    index = futures[future]
                    results[index] = future.result()
                    pending.remove(index)
            return results
        except BrokenProcessPool as exc:
            # Every still-pending task was (or may have been) in flight
            # on the dead pool; all of them burn one attempt.
            budget = RESTART_POLICY.max_attempts if resumable else 1
            worst = max(pending, key=lambda i: attempts[i])
            if attempts[worst] >= budget:
                checkpoint = _task_checkpoint(items[worst])
                detail = (
                    f"resumable from checkpoint {checkpoint}"
                    if checkpoint is not None
                    else "rerun with jobs=1 to debug in-process"
                )
                raise WorkerFailedError(
                    f"simulation task {worst} lost its worker process "
                    f"{attempts[worst]} time(s) (crashed or killed); {detail}",
                    task_id=worst,
                    attempts=attempts[worst],
                    checkpoint=checkpoint,
                ) from exc
            time.sleep(RESTART_POLICY.delay(attempts[worst], key="pool"))


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: int | None = 1,
    *,
    codec: str | None = None,
    payloads: Sequence[Any] | None = None,
    on_executed: Callable[[int], None] | None = None,
) -> list[Any]:
    """``[fn(item) for item in items]``, memoized and optionally pooled.

    ``fn`` and every item must be picklable (``fn`` defined at module top
    level).  Results come back in input order.  Exceptions raised *inside*
    a worker propagate unchanged; a worker process that dies outright is
    reported as :class:`WorkerFailedError` (or retried with backoff, when
    the active cache context has checkpointing configured).  A context
    carrying a ``dispatcher`` delegates all execution — pooling, retries
    and supervision included — to it.

    ``codec`` opts the call into the result cache: when a
    :mod:`repro.cache` context is active, each unit of work is keyed by
    the matching entry of ``payloads`` (a JSON-able description;
    defaults to the items themselves) and hits skip execution entirely.
    Cached results must never be ``None`` — ``None`` is the miss
    sentinel.  ``on_executed`` receives the number of items actually
    executed (for the harness's cycle accounting).
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    context = runtime.active()
    resumable = context is not None and context.checkpointing
    dispatcher = context.dispatcher if context is not None else None

    def execute(work: list[Any]) -> list[Any]:
        if dispatcher is not None:
            return dispatcher(fn, work)
        return _dispatch(fn, work, jobs, resumable)

    cache = context.cache if context is not None and codec is not None else None
    if cache is None or context is None:
        if on_executed is not None:
            on_executed(len(items))
        return execute(items)
    described = list(payloads) if payloads is not None else items
    if len(described) != len(items):
        raise ConfigurationError(
            f"parallel_map got {len(items)} items but "
            f"{len(described)} payloads"
        )
    keys = [cache_key(context.experiment, codec, p) for p in described]
    results: list[Any] = [None] * len(items)
    missed: list[int] = []
    for index, key in enumerate(keys):
        hit = cache.get(key)
        if hit is None:
            missed.append(index)
        else:
            results[index] = hit
    if on_executed is not None:
        on_executed(len(missed))
    if missed:
        fresh = execute([items[i] for i in missed])
        for index, result in zip(missed, fresh):
            cache.put(keys[index], context.experiment, codec, result)
            results[index] = result
    return results


def _simulate_task(task: tuple[Any, ...]) -> "SimulationResult":
    """Pool worker: run one simulation, resumable when checkpointed.

    Accepts ``(config, warmup, measure)`` or the checkpointed form
    ``(config, warmup, measure, checkpoint_every, checkpoint_path)``.
    A checkpointed task whose file already exists belonged to a worker
    that died mid-run: the replacement resumes from the checkpoint — a
    bit-identical continuation — instead of starting over.  The file is
    removed once the run completes.
    """
    # Imported here (cached after the first call) so this module can be
    # imported by repro.network.saturation without a circular import.
    from repro.network.simulator import resume_run, simulate

    if len(task) == 3:
        config, warmup_cycles, measure_cycles = task
        return simulate(config, warmup_cycles, measure_cycles)
    config, warmup_cycles, measure_cycles, every, path = task
    checkpoint = Path(path)
    if checkpoint.exists():
        result = resume_run(checkpoint)
    else:
        result = simulate(
            config,
            warmup_cycles,
            measure_cycles,
            checkpoint_every=every,
            checkpoint_path=checkpoint,
        )
    checkpoint.unlink(missing_ok=True)
    return result


def _resolve_backends(
    configs: Sequence["NetworkConfig"],
    backend: str | None,
    context: Any,
) -> list[str]:
    """Per-config backend resolution under the ambient instrumentation.

    The sanitizer and telemetry are enabled through the environment, and
    checkpointing through the active cache context — exactly the signals
    each worker's :func:`~repro.network.simulator.simulate` call would
    see — so resolving here keeps the dispatch decision and the worker
    behaviour consistent.
    """
    from repro.kernel.base import resolve_backend
    from repro.telemetry.session import metrics_directory, trace_directory

    sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
    tracing = (
        trace_directory() is not None or metrics_directory() is not None
    )
    checkpointing = (
        context is not None
        and context.checkpoint_every is not None
        and context.checkpoint_dir is not None
    )
    return [
        resolve_backend(
            config,
            backend,
            sanitize=sanitize,
            trace=tracing,
            checkpoint=checkpointing,
        )
        for config in configs
    ]


def _mixed_backend_simulate(
    configs: list["NetworkConfig"],
    payloads: list[dict[str, Any]],
    backends: list[str],
    warmup_cycles: int,
    measure_cycles: int,
    jobs: int | None,
) -> list["SimulationResult"]:
    """Route a grid whose configs resolved to different backends.

    The numpy subset is served from the cache where possible, with the
    misses fused into batch kernels in this process; the reference
    subset re-enters :func:`parallel_simulate` with the backend pinned,
    keeping its pooling/checkpointing/caching behaviour untouched.
    """
    global _cycles_simulated
    context = runtime.active()
    cache = context.cache if context is not None else None
    results: list[Any] = [None] * len(configs)
    numpy_indices = [i for i, b in enumerate(backends) if b == "numpy"]
    reference_indices = [i for i, b in enumerate(backends) if b != "numpy"]
    keys: dict[int, Any] = {}
    missed = numpy_indices
    if cache is not None and context is not None:
        keys = {
            index: cache_key(
                context.experiment, "simulation-result", payloads[index]
            )
            for index in numpy_indices
        }
        missed = []
        for index in numpy_indices:
            hit = cache.get(keys[index])
            if hit is None:
                missed.append(index)
            else:
                results[index] = hit
    if missed:
        _cycles_simulated += (warmup_cycles + measure_cycles) * len(missed)
        fresh = _numpy_group_simulate(
            [configs[i] for i in missed], warmup_cycles, measure_cycles
        )
        for index, result in zip(missed, fresh):
            if cache is not None and context is not None:
                cache.put(
                    keys[index],
                    context.experiment,
                    "simulation-result",
                    result,
                )
            results[index] = result
    if reference_indices:
        reference_results = parallel_simulate(
            [configs[i] for i in reference_indices],
            warmup_cycles,
            measure_cycles,
            jobs=jobs,
            backend="reference",
        )
        for index, result in zip(reference_indices, reference_results):
            results[index] = result
    return results


def _numpy_group_simulate(
    configs: Sequence["NetworkConfig"],
    warmup_cycles: int,
    measure_cycles: int,
) -> list["SimulationResult"]:
    """Run configs on the numpy backend, fused into batch groups.

    Structurally identical configs (:func:`~repro.kernel.numpy_kernel
    .batch_group_key`) share one struct-of-arrays kernel, so the whole
    group advances per cycle with the same array ops — that fusion, not
    a process pool, is the numpy backend's parallelism.  Results come
    back in input order, byte-identical to per-config runs.
    """
    from repro.kernel.numpy_kernel import NumpyKernel, batch_group_key

    groups: dict[tuple[Any, ...], list[int]] = {}
    for index, config in enumerate(configs):
        groups.setdefault(batch_group_key(config), []).append(index)
    results: list[Any] = [None] * len(configs)
    for indices in groups.values():
        kernel = NumpyKernel.batch([configs[i] for i in indices])
        for index, result in zip(
            indices, kernel.run_batch(warmup_cycles, measure_cycles)
        ):
            results[index] = result
    return results


def parallel_simulate(
    configs: Sequence["NetworkConfig"],
    warmup_cycles: int = 2000,
    measure_cycles: int = 10000,
    jobs: int | None = 1,
    backend: str | None = None,
) -> list["SimulationResult"]:
    """Simulate every config, in input order, over ``jobs`` processes.

    Per-config seeding makes the result list byte-identical for any
    ``jobs`` value; ``jobs=1`` is a plain serial loop in this process.
    Under an active cache context, previously computed configs are
    served from the store (and only cache misses count toward
    :func:`simulated_cycles`); with checkpointing configured, each
    simulation periodically checkpoints into the context's directory so
    a dead worker's replacement resumes instead of restarting.

    ``backend`` forces a simulation backend for the whole grid; ``None``
    honours the ``REPRO_BACKEND`` preference (see
    :func:`repro.kernel.base.resolve_backend`).  Configs that resolve to
    the numpy backend are fused into struct-of-arrays batch kernels and
    run in this process — vectorization replaces the pool — while the
    rest (unsupported configs under a soft preference, or everything
    under active instrumentation) take the standard reference path.
    Results are byte-identical either way, so the two routes share one
    cache namespace: a result computed by either backend is a hit for
    both.
    """
    configs = list(configs)
    payloads = [
        {
            "config": config.to_state(),
            "warmup": warmup_cycles,
            "measure": measure_cycles,
        }
        for config in configs
    ]
    context = runtime.active()
    if backend is None and context is not None:
        # The runner's --backend flag arrives ambiently, like the cache:
        # experiments stay backend-oblivious (see CacheContext.backend).
        backend = context.backend
    backends = _resolve_backends(configs, backend, context)
    if "numpy" in backends:
        return _mixed_backend_simulate(
            configs,
            payloads,
            backends,
            warmup_cycles,
            measure_cycles,
            jobs,
        )
    tasks: list[tuple[Any, ...]]
    if (
        context is not None
        and context.checkpoint_every is not None
        and context.checkpoint_dir is not None
    ):
        directory = context.checkpoint_dir
        tasks = []
        for config, payload in zip(configs, payloads):
            stamp = digest_json(payload)
            tasks.append(
                (
                    config,
                    warmup_cycles,
                    measure_cycles,
                    context.checkpoint_every,
                    str(directory / f"{stamp[:32]}.ckpt"),
                )
            )
    else:
        tasks = [
            (config, warmup_cycles, measure_cycles) for config in configs
        ]

    def count_cycles(executed: int) -> None:
        global _cycles_simulated
        _cycles_simulated += (warmup_cycles + measure_cycles) * executed

    return parallel_map(
        _simulate_task,
        tasks,
        jobs=jobs,
        codec="simulation-result",
        payloads=payloads,
        on_executed=count_cycles,
    )
