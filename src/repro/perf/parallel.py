"""Process-pool map over independent simulation runs.

Every cell of the paper's tables is one :class:`NetworkConfig` simulated
in isolation; all randomness derives from ``config.seed`` through named
substreams, so a run's result does not depend on which process executes
it or in what order.  ``parallel_simulate`` exploits that: it fans a list
of configs over a :class:`~concurrent.futures.ProcessPoolExecutor` and
returns results in input order, byte-identical to the serial loop.

``jobs=1`` (the default everywhere) bypasses the pool entirely — the
serial path runs the exact same ``simulate`` calls in the parent process,
which keeps single-job behaviour free of multiprocessing overhead and
makes the serial/parallel equivalence trivial to test.

A worker that dies (segfault, OOM kill, ``os._exit``) surfaces as a
:class:`~repro.errors.SimulationError` rather than a hang or a raw
``BrokenProcessPool``.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.network.metrics import SimulationResult
    from repro.network.simulator import NetworkConfig

__all__ = [
    "parallel_map",
    "parallel_simulate",
    "resolve_jobs",
    "reset_simulated_cycles",
    "simulated_cycles",
]

#: Network cycles simulated through this module since the last reset
#: (parent-process view; the perf harness reads this to report
#: simulated-cycles-per-second).
_cycles_simulated = 0


def simulated_cycles() -> int:
    """Network cycles routed through :func:`parallel_simulate` so far."""
    return _cycles_simulated


def reset_simulated_cycles() -> None:
    """Zero the cycle counter (the harness calls this per experiment)."""
    global _cycles_simulated
    _cycles_simulated = 0


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a jobs request: ``None``/``0`` means one per CPU."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be positive, got {jobs}")
    return jobs


def parallel_map(
    fn: Callable,
    items: Iterable,
    jobs: int | None = 1,
) -> list:
    """``[fn(item) for item in items]``, optionally over a process pool.

    ``fn`` and every item must be picklable (``fn`` defined at module top
    level).  Results come back in input order.  Exceptions raised *inside*
    a worker propagate unchanged; a worker process that dies outright is
    reported as :class:`SimulationError`.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
            return list(pool.map(fn, items))
    except BrokenProcessPool as exc:
        raise SimulationError(
            "a simulation worker process died before returning its result "
            "(crashed or killed); rerun with jobs=1 to debug in-process"
        ) from exc


def _simulate_task(task: tuple) -> "SimulationResult":
    """Pool worker: run one (config, warmup, measure) simulation."""
    # Imported here (cached after the first call) so this module can be
    # imported by repro.network.saturation without a circular import.
    from repro.network.simulator import simulate

    config, warmup_cycles, measure_cycles = task
    return simulate(config, warmup_cycles, measure_cycles)


def parallel_simulate(
    configs: Sequence["NetworkConfig"],
    warmup_cycles: int = 2000,
    measure_cycles: int = 10000,
    jobs: int | None = 1,
) -> list["SimulationResult"]:
    """Simulate every config, in input order, over ``jobs`` processes.

    Per-config seeding makes the result list byte-identical for any
    ``jobs`` value; ``jobs=1`` is a plain serial loop in this process.
    """
    global _cycles_simulated
    configs = list(configs)
    _cycles_simulated += (warmup_cycles + measure_cycles) * len(configs)
    return parallel_map(
        _simulate_task,
        [(config, warmup_cycles, measure_cycles) for config in configs],
        jobs=jobs,
    )
