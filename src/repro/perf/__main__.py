"""Command-line entry point for the perf-trajectory harness.

Examples::

    # Quick benchmark of every experiment, written to BENCH.json:
    python -m repro.perf --quick -o BENCH.json

    # Compare against the committed baseline (CI perf-smoke job):
    python -m repro.perf --quick -o BENCH.json \\
        --baseline benchmarks/BENCH_2_quick.json --max-regression 3.0

    # Profile one experiment's hot path:
    python -m repro.perf --quick --profile figure3.prof figure3
"""

from __future__ import annotations

import argparse
import sys

from repro.cache.store import DEFAULT_CACHE_DIR, ResultCache
from repro.experiments.runner import EXPERIMENTS
from repro.perf.harness import (
    compare_to_baseline,
    load_bench,
    run_harness,
    write_bench,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Benchmark the experiment pipeline and track the result.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"experiments to measure (default: all of {sorted(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the shortened simulation windows (benchmark fidelity)",
    )
    parser.add_argument("--seed", type=int, default=1988)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per simulation grid (0 = one per CPU)",
    )
    parser.add_argument(
        "--backend",
        choices=["reference", "numpy"],
        default=None,
        help="force the simulation backend (recorded in the benchmark "
        "JSON; baselines from a different backend are refused).  Unset, "
        "the REPRO_BACKEND environment variable applies softly",
    )
    parser.add_argument(
        "-o",
        "--output",
        metavar="PATH",
        help="write the benchmark JSON here (e.g. BENCH.json)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="compare wall times against this earlier benchmark file",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=3.0,
        help="fail when any experiment exceeds this multiple of its "
        "baseline wall time (default: 3.0)",
    )
    parser.add_argument(
        "--profile",
        metavar="PROF",
        help="run under cProfile and write stats to PROF "
        "(inspect with python -m pstats)",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="measure cold vs warm-cache wall time: the store is cleared, "
        "each experiment runs cold (populating it) and again warm "
        "(served from it); warm_* fields land in the benchmark JSON",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help=f"cache directory for --cache (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="benchmark with full event tracing enabled (quantifies the "
        "telemetry overhead; artifacts land in TRACE_DIR)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="benchmark with metrics-only telemetry (counters, no ring)",
    )
    parser.add_argument(
        "--trace-dir",
        metavar="DIR",
        default="telemetry",
        help="export directory for --trace/--metrics (default: ./telemetry)",
    )
    args = parser.parse_args(argv)
    if args.trace or args.metrics:
        import os

        env_name = "REPRO_TRACE" if args.trace else "REPRO_METRICS"
        os.environ[env_name] = args.trace_dir

    experiment_ids = args.experiments or None
    cache = ResultCache(args.cache_dir) if args.cache else None

    def measure() -> dict:
        return run_harness(
            experiment_ids,
            quick=args.quick,
            seed=args.seed,
            jobs=args.jobs,
            cache=cache,
            backend=args.backend,
        )

    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        document = profiler.runcall(measure)
        profiler.dump_stats(args.profile)
        print(f"profile written to {args.profile}")
    else:
        document = measure()

    if args.output:
        path = write_bench(document, args.output)
        print(f"benchmark written to {path}")

    if args.baseline:
        failures = compare_to_baseline(
            document,
            load_bench(args.baseline),
            max_regression=args.max_regression,
        )
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"within {args.max_regression:.1f}x of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
