"""Performance-trajectory harness: time every experiment, track it per PR.

Each run measures, per experiment, the wall-clock time and the simulated
network-cycles-per-second throughput (cycle counts come from
:func:`repro.perf.parallel.simulated_cycles`, which every experiment's
simulation grid flows through).  Results are written to ``BENCH_<n>.json``
so each PR commits a baseline under ``benchmarks/`` and the next PR can be
compared against it — the perf trajectory of the repo over time.

The JSON schema (version 2)::

    {
      "schema": 2,
      "mode": "quick" | "full",
      "jobs": 1,
      "backend": "reference" | "numpy",
      "experiments": {
        "figure3": {"wall_s": 12.3, "cycles_per_s": 98000.0, "jobs": 1},
        ...
      }
    }

Version 1 files (no ``backend`` field) still load — they predate the
backend abstraction and implicitly measured the reference simulator.
Baseline comparisons refuse to diff documents from different backends:
a 10× kernel speedup is not a perf regression fix, and a regression
hidden behind a backend switch is not a pass.

``python -m repro.perf`` runs the harness from the command line; see
``--help`` for baseline comparison (used by CI's perf-smoke job) and
``--profile`` for a cProfile capture of the slowest experiment path.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.perf.parallel import reset_simulated_cycles, simulated_cycles

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache

__all__ = [
    "BENCH_SCHEMA",
    "measure_experiment",
    "run_harness",
    "write_bench",
    "load_bench",
    "compare_to_baseline",
]

#: Version tag written into every benchmark file.
BENCH_SCHEMA = 2

#: Schema versions :func:`load_bench` accepts (1 predates the backend
#: field and reads as an implicit reference-backend document).
_READABLE_SCHEMAS = (1, 2)


def measure_experiment(
    experiment_id: str,
    quick: bool = True,
    seed: int = 1988,
    jobs: int | None = 1,
    cache: "ResultCache | None" = None,
    backend: str | None = None,
) -> dict:
    """Run one experiment and return its timing record.

    Returns ``{"wall_s": ..., "cycles_per_s": ..., "jobs": ...}`` where
    ``cycles_per_s`` is simulated network cycles per wall-clock second —
    the harness's primary throughput figure, independent of how many
    simulations the experiment happens to contain.

    With ``cache`` set the experiment runs twice — a cold pass that
    populates the store (timed as ``wall_s``, so baselines stay
    comparable) and a warm pass served from it — and the record
    additionally carries ``warm_wall_s``, ``warm_cycles_simulated``
    (0 when every result was a cache hit) and ``warm_speedup``.
    """
    from repro.perf.parallel import resolve_jobs

    reset_simulated_cycles()
    start = time.perf_counter()
    run_experiment(
        experiment_id,
        quick=quick,
        seed=seed,
        jobs=jobs,
        cache=cache,
        backend=backend,
    )
    wall_s = time.perf_counter() - start
    cycles = simulated_cycles()
    record = {
        "wall_s": round(wall_s, 3),
        "cycles_per_s": round(cycles / wall_s, 1) if wall_s > 0 else 0.0,
        "jobs": resolve_jobs(jobs),
    }
    if cache is not None:
        reset_simulated_cycles()
        start = time.perf_counter()
        run_experiment(
            experiment_id,
            quick=quick,
            seed=seed,
            jobs=jobs,
            cache=cache,
            backend=backend,
        )
        warm_wall_s = time.perf_counter() - start
        record["warm_wall_s"] = round(warm_wall_s, 3)
        record["warm_cycles_simulated"] = simulated_cycles()
        record["warm_speedup"] = (
            round(wall_s / warm_wall_s, 1) if warm_wall_s > 0 else 0.0
        )
    return record


def run_harness(
    experiment_ids: list[str] | None = None,
    quick: bool = True,
    seed: int = 1988,
    jobs: int | None = 1,
    progress: bool = True,
    cache: "ResultCache | None" = None,
    backend: str | None = None,
) -> dict:
    """Measure every requested experiment; return the benchmark document.

    With ``cache`` set the store is cleared first, so each experiment's
    cold pass is genuinely cold and its warm pass (see
    :func:`measure_experiment`) is served entirely from the entries the
    cold pass just wrote.
    """
    if experiment_ids is None:
        experiment_ids = list(EXPERIMENTS)
    for experiment_id in experiment_ids:
        if experiment_id not in EXPERIMENTS:
            raise ConfigurationError(
                f"unknown experiment {experiment_id!r}; "
                f"choose from {sorted(EXPERIMENTS)}"
            )
    if cache is not None:
        cache.clear()
    from repro.kernel.base import requested_backend

    effective_backend = backend or requested_backend() or "reference"
    records: dict[str, dict] = {}
    for experiment_id in experiment_ids:
        record = measure_experiment(
            experiment_id,
            quick=quick,
            seed=seed,
            jobs=jobs,
            cache=cache,
            backend=backend,
        )
        records[experiment_id] = record
        if progress:
            line = (
                f"  {experiment_id:<16} {record['wall_s']:>8.2f}s  "
                f"{record['cycles_per_s']:>12,.0f} cycles/s"
            )
            if "warm_wall_s" in record:
                line += (
                    f"  warm {record['warm_wall_s']:>7.2f}s "
                    f"({record['warm_speedup']:.0f}x)"
                )
            print(line)
    document = {
        "schema": BENCH_SCHEMA,
        "mode": "quick" if quick else "full",
        "jobs": records[next(iter(records))]["jobs"] if records else 1,
        "backend": effective_backend,
        "experiments": records,
    }
    if cache is not None:
        document["cached"] = True
    return document


def write_bench(document: dict, path: str | Path) -> Path:
    """Write a benchmark document as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def load_bench(path: str | Path) -> dict:
    """Read a benchmark document, validating the schema version.

    Accepts any of :data:`_READABLE_SCHEMAS`; version-1 documents carry
    no ``backend`` field and are interpreted as reference-backend runs.
    """
    document = json.loads(Path(path).read_text())
    if document.get("schema") not in _READABLE_SCHEMAS:
        raise ConfigurationError(
            f"benchmark file {path} has schema "
            f"{document.get('schema')!r}, expected one of "
            f"{_READABLE_SCHEMAS}"
        )
    return document


def compare_to_baseline(
    current: dict, baseline: dict, max_regression: float = 3.0
) -> list[str]:
    """Return a list of regression messages (empty = within budget).

    An experiment regresses when its wall time exceeds ``max_regression``
    times the baseline's.  Experiments present in only one document are
    skipped — the trajectory only compares like with like.  The generous
    default factor absorbs shared-machine noise; it exists to catch
    order-of-magnitude accidents, not 10% drifts.
    """
    if max_regression <= 0:
        raise ConfigurationError(
            f"max_regression must be positive, got {max_regression}"
        )
    if current.get("mode") != baseline.get("mode"):
        return [
            f"mode mismatch: current={current.get('mode')!r} "
            f"baseline={baseline.get('mode')!r}; not comparable"
        ]
    current_backend = current.get("backend", "reference")
    baseline_backend = baseline.get("backend", "reference")
    if current_backend != baseline_backend:
        return [
            f"backend mismatch: current={current_backend!r} "
            f"baseline={baseline_backend!r}; cross-backend wall times "
            "measure different kernels and are not comparable"
        ]
    failures = []
    for experiment_id, record in current.get("experiments", {}).items():
        base = baseline.get("experiments", {}).get(experiment_id)
        if base is None or base.get("wall_s", 0) <= 0:
            continue
        ratio = record["wall_s"] / base["wall_s"]
        if ratio > max_regression:
            failures.append(
                f"{experiment_id}: {record['wall_s']:.2f}s is "
                f"{ratio:.1f}x the baseline {base['wall_s']:.2f}s "
                f"(budget {max_regression:.1f}x)"
            )
    return failures
