"""Performance layer: parallel experiment engine and trajectory harness.

The paper pipeline is a large grid of *independent* simulation runs —
every table cell and curve point is one :class:`~repro.network.simulator.
NetworkConfig` with its own root seed, so the grid is embarrassingly
parallel and bit-reproducible in any execution order.  This subpackage
provides:

* :func:`parallel_simulate` / :func:`parallel_map` — a process-pool map
  over independent runs (``jobs=1`` degrades to the plain serial loop, so
  serial and parallel results are byte-identical);
* :mod:`repro.perf.harness` — wall-time and simulated-cycles/sec
  measurement per experiment, written to ``BENCH_<pr>.json`` so every PR
  can be tracked against the committed baseline.
"""

from repro.perf.parallel import (
    parallel_map,
    parallel_simulate,
    resolve_jobs,
    reset_simulated_cycles,
    simulated_cycles,
)

__all__ = [
    "parallel_map",
    "parallel_simulate",
    "resolve_jobs",
    "reset_simulated_cycles",
    "simulated_cycles",
]
