"""Fault injection, detection, graceful degradation and recovery.

This package is the active side of the robustness story; the passive side
(the checksum protocol, degrade-mode receive FSMs, and slot retirement)
lives in :mod:`repro.chip` and :mod:`repro.core` so the models never
depend on the fault machinery.  The dependency points one way:
faults → chip/core/network.

* :mod:`repro.faults.injector` — seeded bit flips and stuck-at wires.
* :mod:`repro.faults.transport` — end-to-end ack/timeout/retransmission.
* :mod:`repro.faults.campaign` — fault-rate sweeps and delivery metrics.
"""

from repro.faults.campaign import (
    BUFFER_KINDS,
    BufferSweepCell,
    ChipCampaignResult,
    run_buffer_sweep,
    run_chip_campaign,
)
from repro.faults.injector import FaultInjector, StuckAtFault
from repro.faults.transport import (
    FRAME_MAGIC,
    FRAME_OVERHEAD,
    KIND_ACK,
    KIND_DATA,
    MAX_FRAME_PAYLOAD,
    Frame,
    ReliableChannel,
    ReliableMessenger,
    crc8,
    decode_frame,
    encode_frame,
)

__all__ = [
    "BUFFER_KINDS",
    "BufferSweepCell",
    "ChipCampaignResult",
    "FRAME_MAGIC",
    "FRAME_OVERHEAD",
    "FaultInjector",
    "Frame",
    "KIND_ACK",
    "KIND_DATA",
    "MAX_FRAME_PAYLOAD",
    "ReliableChannel",
    "ReliableMessenger",
    "StuckAtFault",
    "crc8",
    "decode_frame",
    "encode_frame",
    "run_buffer_sweep",
    "run_chip_campaign",
]
