"""End-to-end reliable transport over ComCoBB virtual circuits.

The chip's link checksum detects and discards corrupt packets, but
detection alone loses data.  Recovery is end-to-end (the classic argument:
only the hosts know what "all the data arrived" means): every application
message is wrapped in a small frame carrying a CRC and a sequence number,
the receiver acknowledges each frame, and the sender retransmits on
timeout with exponential backoff.

Frame format (prepended to the payload, all single bytes)::

    MAGIC  kind  src  dst  seq  crc8   payload...

``src``/``dst`` are host-level addresses (campaign node indices), ``seq``
counts messages per (src, dst) flow modulo 256, and ``crc8`` covers the
whole frame with the CRC field zeroed.  ACK frames carry the sequence
number they acknowledge and an empty payload.

:class:`ReliableChannel` is one unidirectional flow's send state;
:class:`ReliableMessenger` is a node's endpoint: it owns one channel per
peer, dedupes received frames, and emits fire-and-forget ACKs on the
reverse circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.chip.network import ChipNetwork, Circuit
from repro.errors import ConfigurationError, ProtocolError
from repro.utils.backoff import BackoffPolicy

__all__ = [
    "FRAME_MAGIC",
    "FRAME_OVERHEAD",
    "KIND_ACK",
    "KIND_DATA",
    "MAX_FRAME_PAYLOAD",
    "Frame",
    "ReliableChannel",
    "ReliableMessenger",
    "crc8",
    "decode_frame",
    "encode_frame",
]

FRAME_MAGIC = 0xA5
KIND_DATA = 0
KIND_ACK = 1
#: Frame bytes before the payload: magic, kind, src, dst, seq, crc.
FRAME_OVERHEAD = 6
#: Largest payload that keeps the whole message (frame + the host layer's
#: two-byte length prefix) inside one 32-byte packet.  Single-packet
#: messages are an intentional design point: a packet dropped by fault
#: containment then loses exactly one message, never a fragment that
#: desynchronizes a multi-packet reassembly.
MAX_FRAME_PAYLOAD = 32 - 2 - FRAME_OVERHEAD


def crc8(data: bytes, polynomial: int = 0x07) -> int:
    """CRC-8 (ATM HEC polynomial x^8+x^2+x+1 by default), MSB first."""
    crc = 0
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ polynomial) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
    return crc


@dataclass(frozen=True)
class Frame:
    """One transport frame (DATA or ACK)."""

    kind: int
    src: int
    dst: int
    seq: int
    payload: bytes = b""


def encode_frame(frame: Frame) -> bytes:
    """Serialize a frame, computing its CRC."""
    if frame.kind not in (KIND_DATA, KIND_ACK):
        raise ConfigurationError(f"unknown frame kind: {frame.kind}")
    for name, value in (
        ("src", frame.src),
        ("dst", frame.dst),
        ("seq", frame.seq),
    ):
        if not 0 <= value <= 255:
            raise ConfigurationError(f"frame {name} out of range: {value}")
    if len(frame.payload) > MAX_FRAME_PAYLOAD:
        raise ConfigurationError(
            f"payload of {len(frame.payload)} bytes exceeds the "
            f"single-packet limit of {MAX_FRAME_PAYLOAD}"
        )
    head = bytearray(
        [FRAME_MAGIC, frame.kind, frame.src, frame.dst, frame.seq, 0]
    )
    body = bytes(head) + frame.payload
    head[5] = crc8(body)
    return bytes(head) + frame.payload


def decode_frame(data: bytes) -> Frame | None:
    """Parse and verify a frame; ``None`` when it is not a valid frame."""
    if len(data) < FRAME_OVERHEAD or data[0] != FRAME_MAGIC:
        return None
    if data[1] not in (KIND_DATA, KIND_ACK):
        return None
    zeroed = bytes(data[:5]) + b"\x00" + bytes(data[FRAME_OVERHEAD:])
    if crc8(zeroed) != data[5]:
        return None
    return Frame(
        kind=data[1],
        src=data[2],
        dst=data[3],
        seq=data[4],
        payload=bytes(data[FRAME_OVERHEAD:]),
    )


@dataclass
class _Pending:
    """One unacknowledged DATA frame."""

    seq: int
    wire_frame: bytes
    attempts: int
    next_retry_cycle: int


class ReliableChannel:
    """Send state of one unidirectional (src → dst) flow.

    The channel hands serialized frames to ``transmit`` (which queues them
    on the circuit) and retransmits unacknowledged ones on a timeout that
    doubles per attempt up to ``base_timeout * backoff_cap``.  A frame
    that exhausts ``max_attempts`` is recorded in :attr:`failed` — the
    graceful-degradation contract is "deliver or say so", never hang.
    """

    def __init__(
        self,
        src: int,
        dst: int,
        transmit: Callable[[bytes], None],
        base_timeout: int = 400,
        backoff_cap: int = 8,
        max_attempts: int = 12,
    ) -> None:
        if base_timeout < 1 or backoff_cap < 1 or max_attempts < 1:
            raise ConfigurationError("timeout parameters must be positive")
        self.src = src
        self.dst = dst
        self.transmit = transmit
        self.base_timeout = base_timeout
        self.backoff_cap = backoff_cap
        self.max_attempts = max_attempts
        # Jitter stays 0: retransmission timers are simulated-cycle
        # counts and must be byte-identical run to run.
        self._backoff = BackoffPolicy(
            base=base_timeout,
            factor=2.0,
            cap_multiple=backoff_cap,
            max_attempts=max_attempts,
        )
        self._next_seq = 0
        self._pending: dict[int, _Pending] = {}
        self.retransmissions = 0
        self.acked = 0
        self.failed: list[int] = []

    @property
    def inflight(self) -> int:
        """Unacknowledged frames still being retried."""
        return len(self._pending)

    def _timeout(self, attempts: int) -> int:
        # base and cap are integers and the exponential term is a power
        # of two, so the float product is exact and int() loses nothing:
        # the schedule is bit-identical to the pre-BackoffPolicy one.
        return int(self._backoff.delay(attempts))

    def send(self, payload: bytes, cycle: int) -> int:
        """Transmit a DATA frame and arm its retransmission timer."""
        seq = self._next_seq
        if seq > 255:
            raise ProtocolError(
                f"flow {self.src}->{self.dst} exhausted its sequence space"
            )
        self._next_seq += 1
        wire_frame = encode_frame(
            Frame(KIND_DATA, self.src, self.dst, seq, payload)
        )
        self._pending[seq] = _Pending(
            seq=seq,
            wire_frame=wire_frame,
            attempts=1,
            next_retry_cycle=cycle + self._timeout(1),
        )
        self.transmit(wire_frame)
        return seq

    def acknowledge(self, seq: int) -> None:
        """Process an incoming ACK (unknown seqs are stale duplicates)."""
        if self._pending.pop(seq, None) is not None:
            self.acked += 1

    def tick(self, cycle: int) -> None:
        """Retransmit every pending frame whose timer expired."""
        for pending in list(self._pending.values()):
            if cycle < pending.next_retry_cycle:
                continue
            if self._backoff.exhausted(pending.attempts):
                del self._pending[pending.seq]
                self.failed.append(pending.seq)
                continue
            pending.attempts += 1
            pending.next_retry_cycle = cycle + self._timeout(pending.attempts)
            self.retransmissions += 1
            self.transmit(pending.wire_frame)


@dataclass
class _MessengerStats:
    """Per-endpoint transport counters."""

    messages_sent: int = 0
    messages_delivered: int = 0
    duplicates_dropped: int = 0
    acks_sent: int = 0
    undecodable_frames: int = 0
    misrouted_frames: int = 0


class ReliableMessenger:
    """A node's end-to-end transport endpoint.

    One messenger sits on each :class:`~repro.chip.network.Node`'s host
    adapter.  ``connect`` registers a peer with the circuit leading to it
    (the reverse circuit is registered by the peer's own ``connect``);
    :meth:`send` queues a message; :meth:`tick` must be called once per
    network cycle to pump received frames, emit ACKs, and drive the
    retransmission timers.
    """

    def __init__(
        self,
        network: ChipNetwork,
        node_name: str,
        address: int,
        base_timeout: int = 400,
        backoff_cap: int = 8,
        max_attempts: int = 12,
        stale_assembly_age: int = 1200,
    ) -> None:
        if node_name not in network.nodes:
            raise ConfigurationError(f"unknown node {node_name!r}")
        if not 0 <= address <= 255:
            raise ConfigurationError(f"address out of range: {address}")
        self.network = network
        self.node = network.nodes[node_name]
        self.address = address
        self.base_timeout = base_timeout
        self.backoff_cap = backoff_cap
        self.max_attempts = max_attempts
        self.stale_assembly_age = stale_assembly_age
        self._circuits: dict[int, Circuit] = {}
        self._channels: dict[int, ReliableChannel] = {}
        #: Sequence numbers already delivered, per peer (dedupe window).
        self._seen: dict[int, set[int]] = {}
        #: (peer address, payload) pairs in arrival order.
        self.delivered: list[tuple[int, bytes]] = []
        self._rx_cursor = 0
        self.stats = _MessengerStats()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def connect(self, peer: int, circuit: Circuit) -> None:
        """Register the circuit that reaches ``peer``."""
        if circuit.source != self.node.name:
            raise ConfigurationError(
                f"circuit starts at {circuit.source!r}, not this node"
            )
        self._circuits[peer] = circuit

    def _channel(self, peer: int) -> ReliableChannel:
        if peer not in self._circuits:
            raise ConfigurationError(f"no circuit to peer {peer}")
        if peer not in self._channels:
            circuit = self._circuits[peer]
            self._channels[peer] = ReliableChannel(
                src=self.address,
                dst=peer,
                transmit=lambda data, c=circuit: self.network.send(c, data),
                base_timeout=self.base_timeout,
                backoff_cap=self.backoff_cap,
                max_attempts=self.max_attempts,
            )
        return self._channels[peer]

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, peer: int, payload: bytes) -> int:
        """Queue a reliable message to a connected peer; return its seq."""
        seq = self._channel(peer).send(payload, self.network.cycle)
        self.stats.messages_sent += 1
        return seq

    @property
    def inflight(self) -> int:
        """Messages sent but neither acknowledged nor failed."""
        return sum(channel.inflight for channel in self._channels.values())

    @property
    def failed(self) -> list[tuple[int, int]]:
        """(peer, seq) pairs that exhausted their retransmission budget."""
        return [
            (peer, seq)
            for peer, channel in self._channels.items()
            for seq in channel.failed
        ]

    @property
    def retransmissions(self) -> int:
        """Total retransmitted frames across all flows."""
        return sum(c.retransmissions for c in self._channels.values())

    # ------------------------------------------------------------------
    # Receiving / timers
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """Pump received frames, send ACKs, run retransmission timers."""
        messages = self.node.host.received_messages
        while self._rx_cursor < len(messages):
            received = messages[self._rx_cursor]
            self._rx_cursor += 1
            frame = decode_frame(received.payload)
            if frame is None:
                # A poisoned or misassembled message; the sender's timer
                # will recover it.
                self.stats.undecodable_frames += 1
                continue
            if frame.dst != self.address:
                # A corrupted header relabeled the packet onto another
                # valid circuit; the CRC survived but it is not ours.
                self.stats.misrouted_frames += 1
                continue
            if frame.kind == KIND_ACK:
                channel = self._channels.get(frame.src)
                if channel is not None:
                    channel.acknowledge(frame.seq)
                continue
            self._receive_data(frame)
        for channel in self._channels.values():
            channel.tick(cycle)
        self.node.host.flush_stale_assemblies(cycle, self.stale_assembly_age)

    def _receive_data(self, frame: Frame) -> None:
        seen = self._seen.setdefault(frame.src, set())
        if frame.seq not in seen:
            seen.add(frame.seq)
            self.delivered.append((frame.src, frame.payload))
            self.stats.messages_delivered += 1
        else:
            self.stats.duplicates_dropped += 1
        # Acknowledge every receipt (the first ACK may have been lost);
        # ACKs are fire-and-forget — a lost ACK just costs a duplicate.
        if frame.src in self._circuits:
            ack = encode_frame(
                Frame(KIND_ACK, self.address, frame.src, frame.seq)
            )
            self.network.send(self._circuits[frame.src], ack)
            self.stats.acks_sent += 1
