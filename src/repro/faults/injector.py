"""Seeded fault injectors for the chip model's wires.

A :class:`FaultInjector` attaches to the ``fault`` hook of
:class:`~repro.chip.wires.Wire` objects and corrupts the bytes driven on
them, modelling the two physical failure modes of the paper's link wires:

* **transient bit flips** — every bit of every driven byte flips
  independently with probability ``bit_flip_rate`` (drawn from a seeded
  :class:`~repro.utils.rng.RandomStream`, so campaigns are reproducible);
* **stuck-at wires** — a :class:`StuckAtFault` forces one bit of every
  byte crossing a matching link to a constant, modelling a broken driver
  or a solder fault.

Start bits and idle cycles are never corrupted (the start line is modelled
as a separate, assumed-good wire); everything else — header, length, data
and checksum bytes — is fair game, which is exactly why the protocol
carries the checksum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chip.wires import Link, Wire
from repro.errors import ConfigurationError
from repro.utils.rng import RandomStream

__all__ = ["FaultInjector", "StuckAtFault"]


@dataclass(frozen=True)
class StuckAtFault:
    """One bit of every matching wire permanently stuck at a constant.

    ``wire_substring`` selects wires by name (e.g. ``"node_0_0.out1"``
    or a full link name); ``bit`` is the wire index (0 = LSB) and
    ``value`` the level it is stuck at.
    """

    wire_substring: str
    bit: int
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.bit <= 7:
            raise ConfigurationError(f"bit index out of range: {self.bit}")
        if self.value not in (0, 1):
            raise ConfigurationError(f"stuck value must be 0 or 1: {self.value}")

    def apply(self, byte: int) -> int:
        """The byte as it appears on the faulty wire."""
        if self.value:
            return byte | (1 << self.bit)
        return byte & ~(1 << self.bit)


class FaultInjector:
    """Attachable, seeded corruption of wire traffic.

    Parameters
    ----------
    seed:
        Root seed of the injector's random stream; two injectors with the
        same seed corrupt the same bytes of the same wires.
    bit_flip_rate:
        Per-bit, per-byte flip probability.  Internally one draw decides
        whether a byte is hit at all (probability ``1 - (1-p)**8``) and a
        second picks the bit, so a zero rate draws nothing.
    stuck_faults:
        Permanent :class:`StuckAtFault` defects, applied before the
        transient flips.
    """

    def __init__(
        self,
        seed: int,
        bit_flip_rate: float = 0.0,
        stuck_faults: tuple[StuckAtFault, ...] = (),
    ) -> None:
        if not 0.0 <= bit_flip_rate <= 1.0:
            raise ConfigurationError(
                f"bit flip rate out of range: {bit_flip_rate}"
            )
        self.seed = seed
        self.bit_flip_rate = bit_flip_rate
        self.stuck_faults = tuple(stuck_faults)
        self._byte_hit_rate = 1.0 - (1.0 - bit_flip_rate) ** 8
        self._rng = RandomStream(seed, "fault-injector")
        # Bound methods are re-created per attribute access, so cache one
        # object for the identity checks in attach/detach.
        self._hook = self._corrupt
        self._wires: list[Wire] = []
        self.bytes_seen = 0
        self.flips_injected = 0
        self.stuck_corruptions = 0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach_wire(self, wire: Wire) -> None:
        """Install the corruption hook on one wire."""
        if wire.fault is not None and wire.fault is not self._hook:
            raise ConfigurationError(
                f"wire {wire.name!r} already has a fault hook"
            )
        wire.fault = self._hook
        self._wires.append(wire)

    def attach(self, links: list[Link]) -> int:
        """Install the hook on every link's data wire; return the count."""
        for link in links:
            self.attach_wire(link.data)
        return len(links)

    def detach(self) -> None:
        """Remove the hook from every attached wire."""
        for wire in self._wires:
            if wire.fault is self._hook:
                wire.fault = None
        self._wires.clear()

    # ------------------------------------------------------------------
    # Corruption
    # ------------------------------------------------------------------

    def _corrupt(self, wire_name: str, value: int) -> int:
        self.bytes_seen += 1
        for fault in self.stuck_faults:
            if fault.wire_substring in wire_name:
                forced = fault.apply(value)
                if forced != value:
                    self.stuck_corruptions += 1
                value = forced
        if self._byte_hit_rate and self._rng.bernoulli(self._byte_hit_rate):
            value ^= 1 << self._rng.randint(0, 8)
            self.flips_injected += 1
        return value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjector(seed={self.seed}, "
            f"bit_flip_rate={self.bit_flip_rate}, "
            f"flips={self.flips_injected})"
        )
