"""Fault campaigns: sweep fault rates, measure delivery and degradation.

Two campaign styles, matching the repo's two simulation substrates:

* :func:`run_chip_campaign` exercises the cycle-accurate ComCoBB model — a
  2D mesh of chips with seeded bit flips on every wire, hard-failed buffer
  slots retired on every port, the link checksum detecting corruption, and
  the end-to-end transport (:mod:`repro.faults.transport`) recovering it.
  The headline number is the end-to-end delivery rate, which retransmission
  keeps near 1.0 at fault rates that destroy a large fraction of raw
  packets.

* :func:`run_buffer_sweep` exercises the Omega-network simulator — the
  paper's four buffer architectures operating at reduced capacity (retired
  slots) under packet loss, reporting the delivered throughput each
  architecture sustains while degraded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.chip.comcobb import NUM_PORTS
from repro.chip.degrade import ChipFaultPolicy
from repro.chip.topologies import build_mesh, open_shortest_circuit
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector, StuckAtFault
from repro.faults.transport import MAX_FRAME_PAYLOAD, ReliableMessenger
from repro.network.metrics import SimulationResult
from repro.network.simulator import NetworkConfig
from repro.perf.parallel import parallel_simulate
from repro.switch.flow_control import Protocol

__all__ = [
    "BufferSweepCell",
    "ChipCampaignResult",
    "EXTENDED_BUFFER_KINDS",
    "run_buffer_sweep",
    "run_chip_campaign",
]

#: Buffer architectures compared by the paper, in its own order.
BUFFER_KINDS = ("FIFO", "SAMQ", "SAFC", "DAMQ")

#: The paper's four plus the ``repro.arch`` zoo, so degraded-capacity
#: campaigns exercise ``retire_slot`` on the reserved-slot DAMQ (which
#: must keep at least one shared slot free) and the crosspoint-queued
#: buffer (which retires from its fullest crosspoint, like SAMQ's
#: partitions).
EXTENDED_BUFFER_KINDS = (*BUFFER_KINDS, "DAMQ-RSV", "CQ")


@dataclass
class ChipCampaignResult:
    """Outcome of one chip-network fault campaign."""

    nodes: int
    bit_flip_rate: float
    retired_slots_per_buffer: int
    messages_sent: int
    messages_delivered: int
    failed_messages: int
    retransmissions: int
    duplicates_dropped: int
    undecodable_frames: int
    misrouted_frames: int
    bytes_seen: int
    flips_injected: int
    cycles: int
    fault_counters: dict[str, int] = field(default_factory=dict)

    @property
    def delivery_rate(self) -> float:
        """Fraction of sent messages delivered end-to-end."""
        if self.messages_sent == 0:
            return math.nan
        return self.messages_delivered / self.messages_sent

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.nodes} nodes, flip rate {self.bit_flip_rate:g}, "
            f"{self.retired_slots_per_buffer} retired slot(s)/buffer: "
            f"{self.messages_delivered}/{self.messages_sent} delivered "
            f"({100 * self.delivery_rate:.2f}%), "
            f"{self.retransmissions} retransmissions, "
            f"{self.flips_injected} flips injected, "
            f"{self.cycles} cycles"
        )


def _mesh_shape(nodes: int) -> tuple[int, int]:
    """The most nearly square rows × columns factoring of ``nodes``."""
    for rows in range(int(math.isqrt(nodes)), 0, -1):
        if nodes % rows == 0:
            return rows, nodes // rows
    raise ConfigurationError(f"cannot mesh {nodes} nodes")  # pragma: no cover


def run_chip_campaign(
    nodes: int = 16,
    bit_flip_rate: float = 1e-3,
    retired_slots_per_buffer: int = 1,
    messages_per_flow: int = 4,
    payload_bytes: int = 12,
    peer_offsets: tuple[int, ...] = (1, 4),
    stuck_faults: tuple[StuckAtFault, ...] = (),
    seed: int = 1988,
    send_interval: int = 120,
    max_cycles: int = 200_000,
    base_timeout: int = 500,
    max_attempts: int = 16,
) -> ChipCampaignResult:
    """Fault-inject a mesh of ComCoBB chips and measure e2e delivery.

    Every node sends ``messages_per_flow`` messages to each peer at the
    given index offsets (modulo the node count), staggered ``send_interval``
    cycles apart so injection queues stay short.  The run ends when every
    message is either acknowledged or has exhausted its retransmission
    budget and the network has drained, or at ``max_cycles``.

    The default offsets (1, 4) give mostly nearest-neighbour flows on a
    square mesh (plus a few multi-hop wrap-around routes).  With no
    link-level retransmission, a packet dies to a single bit flip on any
    of its hops, so per-attempt loss grows exponentially with route
    length — at a 1e-3 flip rate a corner-to-corner route already loses
    ~3 of 4 attempts, and recovery is entirely the transport's
    ``max_attempts`` budget.  Campaigns over long routes should raise it.
    """
    if payload_bytes > MAX_FRAME_PAYLOAD:
        raise ConfigurationError(
            f"payload_bytes must be <= {MAX_FRAME_PAYLOAD} "
            f"(single-packet frames)"
        )
    rows, columns = _mesh_shape(nodes)
    policy = ChipFaultPolicy(checksum=True, degrade=True)
    network, names = build_mesh(rows, columns, faults=policy)

    # Graceful degradation under hard faults: take slots out of service in
    # every buffer of every chip before traffic starts.
    for name in names:
        chip = network.nodes[name].chip
        for port in range(NUM_PORTS):
            for _ in range(retired_slots_per_buffer):
                chip.retire_slot(port)

    injector = FaultInjector(
        seed, bit_flip_rate=bit_flip_rate, stuck_faults=stuck_faults
    )
    injector.attach(network.links())

    messengers = [
        ReliableMessenger(
            network,
            name,
            address,
            base_timeout=base_timeout,
            max_attempts=max_attempts,
        )
        for address, name in enumerate(names)
    ]

    # Circuits for every data flow plus the reverse flow carrying its ACKs.
    def ensure_circuit(src: int, dst: int) -> None:
        if dst not in messengers[src]._circuits:
            circuit = open_shortest_circuit(network, names[src], names[dst])
            messengers[src].connect(dst, circuit)

    flows: list[tuple[int, int]] = []
    for src in range(nodes):
        for offset in peer_offsets:
            dst = (src + offset) % nodes
            if dst == src:
                continue
            ensure_circuit(src, dst)
            ensure_circuit(dst, src)
            flows.append((src, dst))

    # Deterministic payloads, distinct per message.
    sends: list[tuple[int, int, bytes]] = []
    for src, dst in flows:
        for index in range(messages_per_flow):
            payload = bytes(
                (src * 31 + dst * 7 + index * 13 + offset) % 256
                for offset in range(payload_bytes)
            )
            sends.append((src, dst, payload))

    next_send = 0
    while True:
        cycle = network.cycle
        if next_send < len(sends) and cycle >= next_send * send_interval:
            src, dst, payload = sends[next_send]
            messengers[src].send(dst, payload)
            next_send += 1
        network.tick()
        for messenger in messengers:
            messenger.tick(network.cycle)
        done = (
            next_send >= len(sends)
            and all(m.inflight == 0 for m in messengers)
            and not network.busy
        )
        if done or network.cycle >= max_cycles:
            break

    network.check_invariants()
    injector.detach()

    return ChipCampaignResult(
        nodes=nodes,
        bit_flip_rate=bit_flip_rate,
        retired_slots_per_buffer=retired_slots_per_buffer,
        messages_sent=sum(m.stats.messages_sent for m in messengers),
        messages_delivered=sum(
            m.stats.messages_delivered for m in messengers
        ),
        failed_messages=sum(len(m.failed) for m in messengers),
        retransmissions=sum(m.retransmissions for m in messengers),
        duplicates_dropped=sum(
            m.stats.duplicates_dropped for m in messengers
        ),
        undecodable_frames=sum(
            m.stats.undecodable_frames for m in messengers
        ),
        misrouted_frames=sum(m.stats.misrouted_frames for m in messengers),
        bytes_seen=injector.bytes_seen,
        flips_injected=injector.flips_injected,
        cycles=network.cycle,
        fault_counters=policy.counters.as_dict(),
    )


@dataclass
class BufferSweepCell:
    """One (buffer architecture, loss rate) cell of the degradation sweep."""

    buffer_kind: str
    packet_loss_rate: float
    retired_slots_per_buffer: int
    result: SimulationResult

    @property
    def delivered_throughput(self) -> float:
        """Delivered packets per cycle per port while degraded."""
        return self.result.delivered_throughput

    @property
    def loss_fraction(self) -> float:
        """Fraction of generated packets destroyed by injected faults."""
        return self.result.meters.loss_fraction


def run_buffer_sweep(
    buffer_kinds: tuple[str, ...] = BUFFER_KINDS,
    loss_rates: tuple[float, ...] = (0.0, 1e-3, 1e-2),
    retired_slots_per_buffer: int = 1,
    num_ports: int = 16,
    radix: int = 4,
    slots_per_buffer: int = 8,
    offered_load: float = 0.5,
    seed: int = 1988,
    warmup_cycles: int = 200,
    measure_cycles: int = 1000,
    jobs: int | None = 1,
) -> list[BufferSweepCell]:
    """Degraded-capacity throughput of the selected buffer architectures.

    Every input buffer loses ``retired_slots_per_buffer`` slots to hard
    faults (for the statically partitioned SAMQ/SAFC — and the
    crosspoint-queued CQ — this thins their largest partition; the
    reserved-slot DAMQ surrenders shared-pool slots so its reservations
    stay intact), and each link crossing loses the packet with
    probability ``packet_loss_rate``.  ``slots_per_buffer`` defaults to
    eight so a 4×4 switch's static partitions keep at least one slot
    after a retirement.  The crosspoint-queued buffer runs under its own
    per-output LQF scheduler; everything else uses the paper's smart
    arbiter.
    """
    if slots_per_buffer - retired_slots_per_buffer < 1:
        raise ConfigurationError("retirement would leave buffers empty")
    base = NetworkConfig(
        num_ports=num_ports,
        radix=radix,
        slots_per_buffer=slots_per_buffer,
        protocol=Protocol.DISCARDING,
        offered_load=offered_load,
        seed=seed,
        retired_slots_per_buffer=retired_slots_per_buffer,
    )
    grid = [(kind, rate) for kind in buffer_kinds for rate in loss_rates]
    results = parallel_simulate(
        [
            base.with_overrides(
                buffer_kind=kind,
                arbiter_kind="lqf" if kind == "CQ" else "smart",
                packet_loss_rate=rate,
            )
            for kind, rate in grid
        ],
        warmup_cycles,
        measure_cycles,
        jobs=jobs,
    )
    return [
        BufferSweepCell(
            buffer_kind=kind,
            packet_loss_rate=rate,
            retired_slots_per_buffer=retired_slots_per_buffer,
            result=result,
        )
        for (kind, rate), result in zip(grid, results)
    ]
