"""Synchronous simulator of an Omega network of n×n switches.

This is the reproduction of the paper's Section 4.2 evaluation substrate.
Following the paper's own simplifications (shared with Pfister & Norton):

* fixed-length packets (one buffer slot each, unless the variable-length
  extension is enabled);
* synchronized transmission — a packet crosses one switch per *network
  cycle*, each network cycle standing for 12 clock cycles (8 to transmit,
  4 to route);
* processors are Bernoulli message generators, memories are sinks.

Within a network cycle the simulator processes stages **from last to
first**: every switch first transmits (freeing slots), then receives from
upstream, so a slot freed in a cycle can be refilled in the same cycle but
a packet advances at most one stage per cycle.  Sources inject after all
switch-to-switch movement.  Flow control follows the configured protocol:

* **blocking** — the arbiter treats an output as blocked when the
  downstream buffer cannot accept the candidate packet;
* **discarding** — nothing is blocked; a packet that arrives at a full
  buffer (including at injection) is dropped and counted.
"""

from __future__ import annotations

import json
import os
from collections.abc import Callable
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any

from repro.core.buffer import SwitchBuffer
from repro.core.packet import Packet, PacketFactory
from repro.core.registry import make_buffer_factory
from repro.errors import BufferFullError, ConfigurationError, SimulationError
from repro.network.metrics import Meters, SimulationResult
from repro.network.sources import Sink, Source
from repro.network.topology import OmegaTopology
from repro.network.traffic import TrafficPattern, make_traffic
from repro.switch.arbiter import BlockedPredicate, make_arbiter
from repro.switch.flow_control import Protocol
from repro.switch.switch import Switch
from repro.utils.rng import RandomStream

__all__ = [
    "NetworkConfig",
    "OmegaNetworkSimulator",
    "SNAPSHOT_VERSION",
    "load_checkpoint",
    "make_simulator",
    "restore_simulator",
    "resume_run",
    "simulate",
]

#: Clock cycles represented by one network cycle (8 transmit + 4 route).
DEFAULT_CYCLE_CLOCKS = 12

#: Version tag of the simulator snapshot format.  Bump whenever the
#: structure of :meth:`OmegaNetworkSimulator.snapshot` changes; restore
#: refuses snapshots from any other version.
SNAPSHOT_VERSION = 1

#: Test hook: when set to an integer N, a run that writes a checkpoint at
#: exactly cycle N hard-exits the process immediately afterwards (the
#: checkpoint/resume tests use this to simulate a worker dying mid-run).
#: A *resumed* run starts at cycle >= N and never writes a checkpoint at
#: N again, so the replacement attempt survives.
CHECKPOINT_EXIT_ENV = "REPRO_TEST_EXIT_AT_CHECKPOINT"

#: Process exit code used by the :data:`CHECKPOINT_EXIT_ENV` test hook.
CHECKPOINT_EXIT_CODE = 23


@dataclass(frozen=True)
class NetworkConfig:
    """Everything that defines one simulation run.

    The defaults are the paper's headline configuration: a 64×64 Omega
    network of 4×4 switches with four slots per input buffer, blocking
    protocol, smart arbitration and uniform traffic.
    """

    num_ports: int = 64
    radix: int = 4
    buffer_kind: str = "DAMQ"
    slots_per_buffer: int = 4
    protocol: Protocol = Protocol.BLOCKING
    arbiter_kind: str = "smart"
    traffic_kind: str = "uniform"
    offered_load: float = 0.5
    hot_fraction: float = 0.05
    hot_port: int = 0
    seed: int = 1988
    cycle_clocks: int = DEFAULT_CYCLE_CLOCKS
    packet_size: int = 1
    #: When set, packet sizes are uniform on [packet_size, packet_size_max]
    #: (variable-length traffic — the paper's conclusion flags this as the
    #: DAMQ buffer's real target).
    packet_size_max: int | None = None
    source_queue_capacity: int = 4
    #: Under the discarding protocol, whether a generated packet that finds
    #: the stage-0 buffer full is dropped (True) or held at the generator
    #: until it fits (False).  The paper's processors are "simply message
    #: generators"; holding at the source reproduces its Table 3 numbers,
    #: where only switch-to-switch transfers discard.
    discard_at_injection: bool = False
    #: Blocking flow-control fidelity: "precise" lets the upstream switch
    #: know the exact downstream queue a packet will join (idealized
    #: pre-routing); "conservative" only lets it know whether a packet of
    #: *any* destination would fit — the realistic constraint the paper
    #: raises against the statically partitioned buffers (Section 2).
    #: FIFO and DAMQ behave identically under both settings.
    flow_control_fidelity: str = "precise"
    #: When True, a packet of ``size`` slots occupies its link (and its
    #: buffer's read port) for ``size`` network cycles, arriving downstream
    #: ``size - 1`` cycles after its grant — store-and-forward
    #: serialization for the variable-length extension.  With fixed
    #: one-slot packets this is exactly the paper's synchronized model, so
    #: the flag changes nothing for the paper's own experiments.
    serialize_links: bool = False
    #: Fault injection: probability that a packet is destroyed on each
    #: link crossing (counted in ``Meters.lost``).  0.0 — the default for
    #: every paper experiment — draws nothing from the RNG, so results
    #: are bit-identical to a build without fault support.
    packet_loss_rate: float = 0.0
    #: Fault injection: hard-failed slots removed from every input buffer
    #: before the run, exercising graceful degradation at reduced
    #: capacity.  0 leaves the buffers untouched.
    retired_slots_per_buffer: int = 0

    def __post_init__(self) -> None:
        # Accept "blocking"/"discarding" strings and normalize to the
        # enum: every downstream predicate compares against Protocol
        # members, so a raw string would silently behave as discarding.
        if not isinstance(self.protocol, Protocol):
            object.__setattr__(
                self, "protocol", Protocol.from_name(self.protocol)
            )

    def with_overrides(self, **kwargs: Any) -> "NetworkConfig":
        """A copy of this config with some fields replaced."""
        return replace(self, **kwargs)

    def to_state(self) -> dict[str, Any]:
        """Every field as a JSON-able dict (cache keys, checkpoints).

        The :class:`Protocol` enum is stored by name; all other fields
        are primitives already.  The dict is also the canonical payload
        hashed into this config's cache key, so field order does not
        matter (keys are sorted at hash time) but values must be stable.
        """
        state = {f.name: getattr(self, f.name) for f in fields(self)}
        state["protocol"] = str(self.protocol)
        return state

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "NetworkConfig":
        """Rebuild a config from a :meth:`to_state` dict."""
        kwargs = dict(state)
        kwargs["protocol"] = Protocol.from_name(kwargs["protocol"])
        return cls(**kwargs)


@dataclass(slots=True)
class _StageLink:
    """Pre-resolved wiring of one switch output to its downstream input."""

    switch: "Switch"
    input_port: int


class OmegaNetworkSimulator:
    """Cycle-by-cycle simulation of one :class:`NetworkConfig`."""

    def __init__(self, config: NetworkConfig) -> None:
        if config.flow_control_fidelity not in ("precise", "conservative"):
            raise ConfigurationError(
                f"unknown flow-control fidelity "
                f"{config.flow_control_fidelity!r}"
            )
        if not 0.0 <= config.packet_loss_rate <= 1.0:
            raise ConfigurationError(
                f"packet loss rate out of range: {config.packet_loss_rate}"
            )
        if config.retired_slots_per_buffer < 0:
            raise ConfigurationError("retired_slots_per_buffer must be >= 0")
        self.config = config
        self.topology = OmegaTopology(config.num_ports, config.radix)
        self.pattern: TrafficPattern = make_traffic(
            config.traffic_kind,
            config.num_ports,
            hot_fraction=config.hot_fraction,
            hot_port=config.hot_port,
        )
        self.factory = PacketFactory()
        root = RandomStream(config.seed, "omega")
        buffer_factory = self._make_buffer_factory(config)
        self.switches: list[list[Switch]] = []
        next_id = 0
        for _stage in range(self.topology.num_stages):
            row = []
            for _index in range(self.topology.switches_per_stage):
                arbiter = make_arbiter(
                    config.arbiter_kind, config.radix, config.radix
                )
                row.append(
                    Switch(next_id, config.radix, config.radix, buffer_factory, arbiter)
                )
                next_id += 1
            self.switches.append(row)
        if config.retired_slots_per_buffer:
            for row in self.switches:
                for switch in row:
                    for buffer in switch.buffers:
                        buffer.retire_slots(config.retired_slots_per_buffer)
        # The loss stream is only spawned when faults are active, keeping
        # zero-fault runs bit-identical to a build without fault support.
        self._loss_rng = (
            root.spawn("link-loss") if config.packet_loss_rate > 0.0 else None
        )
        discarding = config.protocol is Protocol.DISCARDING
        queue_capacity = (
            0
            if discarding and config.discard_at_injection
            else config.source_queue_capacity
        )
        self.sources = [
            Source(
                port=port,
                offered_load=config.offered_load,
                topology=self.topology,
                pattern=self.pattern,
                factory=self.factory,
                rng=root.spawn(f"source{port}"),
                queue_capacity=queue_capacity,
                cycle_clocks=config.cycle_clocks,
                packet_size=config.packet_size,
                packet_size_max=config.packet_size_max,
            )
            for port in range(config.num_ports)
        ]
        self.sinks = [
            Sink(port, config.cycle_clocks) for port in range(config.num_ports)
        ]
        # Pre-resolve inter-stage wiring: downstream[stage][switch][output].
        self._downstream: list[list[list[_StageLink]]] = []
        for stage in range(self.topology.num_stages - 1):
            stage_links = []
            for index in range(self.topology.switches_per_stage):
                links = []
                for output in range(config.radix):
                    location = self.topology.next_hop(stage, index, output)
                    links.append(
                        _StageLink(
                            self.switches[stage + 1][location.switch],
                            location.port,
                        )
                    )
                stage_links.append(links)
            self._downstream.append(stage_links)
        self.cycle = 0
        self.meters = Meters(num_ports=config.num_ports)
        self._measure_start_clock: int | None = None
        # Link-serialization state (only consulted when serialize_links):
        # cycle at which each resource becomes free, plus the in-flight
        # deliveries bucketed by completion cycle.
        stages = self.topology.num_stages
        per_stage = self.topology.switches_per_stage
        self._link_free_at = [
            [[0] * config.radix for _ in range(per_stage)] for _ in range(stages)
        ]
        self._reader_free_at = [
            [[0] * config.radix for _ in range(per_stage)] for _ in range(stages)
        ]
        self._source_free_at = [0] * config.num_ports
        self._pending: dict[int, list[tuple]] = {}
        # Hot-path state, all derived from the config and wiring above.
        self._last_stage = stages - 1
        self._serialize = config.serialize_links
        self._blocking = config.protocol is Protocol.BLOCKING
        self._discard_at_injection = (
            discarding and config.discard_at_injection
        )
        # Where each source's port enters stage 0.
        self._entries = [
            self.topology.entry_point(port) for port in range(config.num_ports)
        ]
        self._entry_switches = [
            self.switches[0][entry.switch] for entry in self._entries
        ]
        # Sink fed by each final-stage switch output.
        self._exit_sinks = [
            [
                self.sinks[self.topology.exit_link(index, output)]
                for output in range(config.radix)
            ]
            for index in range(per_stage)
        ]
        # Occupied slots per stage: a stage whose count is zero has nothing
        # to arbitrate, so ``step`` skips it entirely (active-stage
        # worklist).  Maintained by _run_switch/_forward/_inject.
        self._stage_slots = [0] * stages
        # The flow-control predicate of each switch never changes shape
        # during a run, so build it once instead of rebuilding closures
        # every switch-cycle.
        self._blocked_for: list[list[BlockedPredicate]] = [
            [
                self._make_blocked(stage, index)
                for index in range(per_stage)
            ]
            for stage in range(stages)
        ]

    def _make_buffer_factory(
        self, config: NetworkConfig
    ) -> Callable[[int], SwitchBuffer]:
        """Build the per-input buffer factory.

        Override hook for instrumented simulators: the sanitized subclass
        (:class:`repro.analysis.sanitizer.SanitizedOmegaNetworkSimulator`)
        wraps the returned factory so every buffer is instrumented, while
        this base class keeps the plain, zero-overhead construction.
        """
        return make_buffer_factory(config.buffer_kind, config.slots_per_buffer)

    def _make_blocked(self, stage: int, index: int) -> BlockedPredicate:
        """Build the per-switch flow-control predicate once, up front."""
        if stage == self._last_stage:
            def blocked(input_port: int, output_port: int, packet: Packet) -> bool:
                return False  # sinks always accept
        elif self._blocking and self.config.flow_control_fidelity == "conservative":
            buffers = [
                link.switch.buffers[link.input_port]
                for link in self._downstream[stage][index]
            ]

            def blocked(input_port: int, output_port: int, packet: Packet) -> bool:
                return not buffers[output_port].can_accept_without_prerouting(
                    packet.size
                )
        elif self._blocking:
            buffers = [
                link.switch.buffers[link.input_port]
                for link in self._downstream[stage][index]
            ]

            def blocked(input_port: int, output_port: int, packet: Packet) -> bool:
                return not buffers[output_port].can_accept(
                    packet.route[packet.hop + 1], packet.size
                )
        else:
            def blocked(input_port: int, output_port: int, packet: Packet) -> bool:
                return False

        if self._serialize:
            link_free = self._link_free_at[stage][index]
            reader_free = self._reader_free_at[stage][index]
            flow_blocked = blocked

            def blocked(input_port: int, output_port: int, packet: Packet) -> bool:
                if self.cycle < link_free[output_port]:
                    return True  # previous packet still on the wire
                if self.cycle < reader_free[input_port]:
                    return True  # buffer's read port still streaming
                return flow_blocked(input_port, output_port, packet)

        return blocked

    # ------------------------------------------------------------------
    # One network cycle
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the whole network by one network cycle."""
        stage_slots = self._stage_slots
        for stage in range(self._last_stage, -1, -1):
            if stage_slots[stage] == 0:
                continue  # nothing buffered anywhere in this stage
            blocked_row = self._blocked_for[stage]
            for index, switch in enumerate(self.switches[stage]):
                if switch._occupancy == 0:
                    continue
                self._run_switch(stage, index, switch, blocked_row[index])
        self._inject()
        if self._serialize:
            self._complete_in_flight()
        self._sample_occupancy()
        self.cycle += 1

    def _run_switch(
        self,
        stage: int,
        index: int,
        switch: Switch,
        blocked: BlockedPredicate,
    ) -> None:
        """Arbitrate and move one switch's granted packets downstream."""
        grants = switch.plan_transmissions(blocked)
        if not grants:
            return
        last = stage == self._last_stage
        serialize = self._serialize
        stage_slots = self._stage_slots
        for grant in grants:
            packet = switch.execute(grant)
            stage_slots[stage] -= packet.size
            if serialize and packet.size > 1:
                done = self.cycle + packet.size
                self._link_free_at[stage][index][grant.output_port] = done
                self._reader_free_at[stage][index][grant.input_port] = done
                self._pending.setdefault(done - 1, []).append(
                    ("hop", stage, index, grant.output_port, packet)
                )
            elif last:
                self._deliver(index, grant.output_port, packet)
            else:
                self._forward(stage, index, grant.output_port, packet)

    def _link_fault_destroys(self, packet: Packet) -> bool:
        """Fault injection: whether this link crossing loses the packet."""
        if self._loss_rng is None:
            return False
        if self._loss_rng.bernoulli(self.config.packet_loss_rate):
            if self._in_measurement(packet):
                self.meters.lost += 1
            return True
        return False

    def _forward(
        self, stage: int, index: int, output_port: int, packet: Packet
    ) -> None:
        """Move a packet across one inter-stage link."""
        if self._link_fault_destroys(packet):
            return
        link = self._downstream[stage][index][output_port]
        # Inlined packet.advance_hop() / output_port_at_current_hop():
        # forwarded packets always carry a route entry for the next stage.
        packet.hop += 1
        next_output = packet.route[packet.hop]
        try:
            link.switch.receive(link.input_port, packet, next_output)
        except BufferFullError:
            if self._blocking:
                raise SimulationError(
                    "blocking protocol forwarded into a full buffer"
                ) from None
            self._count_discard(packet)
        else:
            self._stage_slots[stage + 1] += packet.size

    def _deliver(self, index: int, output_port: int, packet: Packet) -> None:
        """Hand a packet leaving the last stage to its memory sink."""
        if self._link_fault_destroys(packet):
            return
        sink = self._exit_sinks[index][output_port]
        sink.deliver(packet, self.cycle)
        if self._in_measurement(packet):
            self.meters.delivered += 1
            self.meters.latency.add(packet.latency())
            self.meters.network_latency.add(packet.network_latency())

    def _inject(self) -> None:
        """Generate new packets and push injection-queue heads into stage 0."""
        discarding = self._discard_at_injection
        serialize = self._serialize
        cycle = self.cycle
        measure_start = self._measure_start_clock
        meters = self.meters
        for source in self.sources:
            generated = source.maybe_generate(cycle)
            if (
                generated is not None
                and measure_start is not None
                and generated.created_at >= measure_start
            ):
                meters.generated += 1
            queue = source.queue
            head = queue[0] if queue else None
            if head is None:
                continue
            if serialize and cycle < self._source_free_at[source.port]:
                continue  # injection link still streaming a prior packet
            entry = self._entries[source.port]
            switch = self._entry_switches[source.port]
            local_output = head.output_port_at_current_hop()
            if switch.can_accept(entry.port, local_output, head.size):
                packet = source.dequeue()
                if serialize and packet.size > 1:
                    done = cycle + packet.size
                    self._source_free_at[source.port] = done
                    self._pending.setdefault(done - 1, []).append(
                        ("inject", 0, entry.switch, entry.port, packet)
                    )
                    continue
                # Injection completes at the end of this network cycle (the
                # frame boundary), after the packet's mid-frame creation.
                packet.injected_at = (cycle + 1) * self.config.cycle_clocks
                switch.receive(entry.port, packet, local_output)
                self._stage_slots[0] += packet.size
                if self._in_measurement(packet):
                    meters.injected += 1
            elif discarding:
                self._count_discard(source.dequeue())

    def _complete_in_flight(self) -> None:
        """Land every serialized transfer whose last slot arrives now."""
        for entry in self._pending.pop(self.cycle, []):
            kind, stage, index, port, packet = entry
            if kind == "inject":
                packet.injected_at = (self.cycle + 1) * self.config.cycle_clocks
                local_output = packet.output_port_at_current_hop()
                # The stage-0 input buffer is fed only by this source link,
                # so the space checked at launch is still there.
                self.switches[0][index].receive(port, packet, local_output)
                self._stage_slots[0] += packet.size
                if self._in_measurement(packet):
                    self.meters.injected += 1
            elif stage == self.topology.num_stages - 1:
                self._deliver(index, port, packet)
            else:
                self._forward(stage, index, port, packet)

    @property
    def in_flight_count(self) -> int:
        """Packets currently serializing across links."""
        return sum(len(bucket) for bucket in self._pending.values())

    def _count_discard(self, packet: Packet) -> None:
        if self._in_measurement(packet):
            self.meters.discarded += 1

    def _sample_occupancy(self) -> None:
        if self._measure_start_clock is not None:
            # Per-stage counters already hold the per-switch sums.
            self.meters.occupancy.add(sum(self._stage_slots))

    def _in_measurement(self, packet: Packet) -> bool:
        """Whether this packet counts toward the measurement window."""
        return (
            self._measure_start_clock is not None
            and packet.created_at >= self._measure_start_clock
        )

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def run(
        self,
        warmup_cycles: int = 2000,
        measure_cycles: int = 10000,
        checkpoint_every: int | None = None,
        checkpoint_path: str | Path | None = None,
    ) -> SimulationResult:
        """Warm up, measure, and summarize.

        Packets *generated* during warm-up never contribute to the meters,
        even if delivered during the measurement window; packets generated
        during measurement but still in flight at the end are simply not
        counted as delivered (standard open-loop methodology).

        With both ``checkpoint_every`` and ``checkpoint_path`` set, a
        full :meth:`snapshot` is written (atomically) to
        ``checkpoint_path`` every ``checkpoint_every`` cycles; a run
        restored from such a checkpoint (:func:`resume_run`) continues
        here — ``self.cycle`` may already be non-zero — and finishes
        bit-identical to an uninterrupted run.
        """
        if warmup_cycles < 0 or measure_cycles < 1:
            raise ConfigurationError("invalid warmup/measure cycle counts")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be >= 1")
        total_cycles = warmup_cycles + measure_cycles
        if self.cycle > total_cycles:
            raise ConfigurationError(
                f"simulator already at cycle {self.cycle}, beyond the "
                f"requested {total_cycles}-cycle window"
            )
        if checkpoint_every is not None and checkpoint_path is not None:
            every: int | None = checkpoint_every
            target: Path | None = Path(checkpoint_path)
        else:
            every = None
            target = None
        exit_at = os.environ.get(CHECKPOINT_EXIT_ENV)
        while self.cycle < total_cycles:
            if (
                self.cycle == warmup_cycles
                and self._measure_start_clock is None
            ):
                self._measure_start_clock = self.cycle * self.config.cycle_clocks
            self.step()
            if (
                every is not None
                and target is not None
                and self.cycle < total_cycles
                and self.cycle % every == 0
            ):
                self.save_checkpoint(
                    target,
                    warmup_cycles,
                    measure_cycles,
                    checkpoint_every,
                )
                if exit_at is not None and self.cycle == int(exit_at):
                    # Test hook: die like a killed worker, leaving the
                    # just-written checkpoint as the recovery point.
                    os._exit(CHECKPOINT_EXIT_CODE)
        self.meters.cycles = measure_cycles
        return SimulationResult(
            buffer_kind=self.config.buffer_kind,
            protocol=str(self.config.protocol),
            arbiter_kind=self.config.arbiter_kind,
            traffic_kind=self.pattern.kind,
            offered_load=self.config.offered_load,
            slots_per_buffer=self.config.slots_per_buffer,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
            seed=self.config.seed,
            meters=self.meters,
        )

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Bit-exact, JSON-able snapshot of the whole simulation.

        Captures everything the run's future depends on: the config, the
        cycle counter and measurement window state, the packet-id
        counter, every source's injection queue and (flushed — see
        :meth:`~repro.network.sources.Source.snapshot_state`) RNG
        stream, every sink and switch (buffers with their slot RAM and
        pointer registers, arbiter fairness state, counters), the
        meters' exact Welford accumulators, the link-serialization
        registers with their in-flight transfers, and the fault model's
        loss stream.  Taking a snapshot never perturbs the run: a
        simulation continued after ``snapshot()`` is draw-for-draw
        identical to one that never snapshotted.
        """
        pending = {
            str(done): [
                [kind, stage, index, port, packet.to_state()]
                for kind, stage, index, port, packet in bucket
            ]
            for done, bucket in self._pending.items()
        }
        return {
            "version": SNAPSHOT_VERSION,
            "config": self.config.to_state(),
            "cycle": self.cycle,
            "measure_start_clock": self._measure_start_clock,
            "factory": self.factory.snapshot_state(),
            "loss_rng": (
                None if self._loss_rng is None else self._loss_rng.get_state()
            ),
            "sources": [source.snapshot_state() for source in self.sources],
            "sinks": [sink.snapshot_state() for sink in self.sinks],
            "switches": [
                [switch.snapshot_state() for switch in row]
                for row in self.switches
            ],
            "meters": self.meters.snapshot_state(),
            "stage_slots": list(self._stage_slots),
            "link_free_at": [
                [list(row) for row in stage] for stage in self._link_free_at
            ],
            "reader_free_at": [
                [list(row) for row in stage] for stage in self._reader_free_at
            ],
            "source_free_at": list(self._source_free_at),
            "pending": pending,
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Overwrite this simulator with a :meth:`snapshot` dict.

        The simulator must have been built from the *same config* the
        snapshot was taken under (checked); restoring mutates component
        lists in place, so the flow-control closures and live-length
        views wired at construction stay valid.
        """
        if state.get("version") != SNAPSHOT_VERSION:
            raise ConfigurationError(
                f"snapshot version {state.get('version')!r} is not the "
                f"supported version {SNAPSHOT_VERSION}"
            )
        if state["config"] != self.config.to_state():
            raise ConfigurationError(
                "snapshot was taken under a different NetworkConfig; "
                "restore into a simulator built from the same config"
            )
        self.cycle = state["cycle"]
        self._measure_start_clock = state["measure_start_clock"]
        self.factory.restore_state(state["factory"])
        if self._loss_rng is not None and state["loss_rng"] is not None:
            self._loss_rng.set_state(state["loss_rng"])
        for source, source_state in zip(self.sources, state["sources"]):
            source.restore_state(source_state)
        for sink, sink_state in zip(self.sinks, state["sinks"]):
            sink.restore_state(sink_state)
        for row, row_state in zip(self.switches, state["switches"]):
            for switch, switch_state in zip(row, row_state):
                switch.restore_state(switch_state)
        self.meters.restore_state(state["meters"])
        self._stage_slots[:] = state["stage_slots"]
        # The innermost free-at lists are captured by the flow-control
        # closures built in __init__ — mutate them in place.
        for stage_rows, saved_stage in zip(
            self._link_free_at, state["link_free_at"]
        ):
            for row_list, saved in zip(stage_rows, saved_stage):
                row_list[:] = saved
        for stage_rows, saved_stage in zip(
            self._reader_free_at, state["reader_free_at"]
        ):
            for row_list, saved in zip(stage_rows, saved_stage):
                row_list[:] = saved
        self._source_free_at[:] = state["source_free_at"]
        self._pending = {
            int(done): [
                (kind, stage, index, port, Packet.from_state(packet_state))
                for kind, stage, index, port, packet_state in bucket
            ]
            for done, bucket in state["pending"].items()
        }

    def save_checkpoint(
        self,
        path: str | Path,
        warmup_cycles: int,
        measure_cycles: int,
        checkpoint_every: int | None = None,
    ) -> Path:
        """Write a resumable checkpoint file (atomic replace).

        The file records the run window alongside the snapshot, so
        :func:`resume_run` needs nothing but the path.
        """
        document = {
            "format": SNAPSHOT_VERSION,
            "warmup_cycles": warmup_cycles,
            "measure_cycles": measure_cycles,
            "checkpoint_every": checkpoint_every,
            "state": self.snapshot(),
        }
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        scratch = target.with_name(f"{target.name}.tmp{os.getpid()}")
        scratch.write_text(json.dumps(document))
        os.replace(scratch, target)
        return target

    @property
    def total_buffered(self) -> int:
        """Slots currently occupied inside the network (tests/metrics)."""
        return sum(switch.occupancy for row in self.switches for switch in row)

    @property
    def total_buffered_packets(self) -> int:
        """Packets currently buffered (a multi-slot packet counts once)."""
        return sum(
            len(buffer.packets())
            for row in self.switches
            for switch in row
            for buffer in switch.buffers
        )


def make_simulator(
    config: NetworkConfig,
    sanitize: bool | None = None,
    trace: bool | None = None,
) -> OmegaNetworkSimulator:
    """Build a plain, sanitized or telemetry-instrumented simulator.

    ``sanitize=None`` (the default) consults the ``REPRO_SANITIZE``
    environment variable, so an unmodified experiment pipeline — including
    the parallel workers of :mod:`repro.perf`, which inherit the
    environment — runs sanitized when the user exports ``REPRO_SANITIZE=1``.
    ``trace=None`` likewise consults ``REPRO_TRACE`` (full event tracing)
    and ``REPRO_METRICS`` (counters only, no event ring); when either
    names a directory, the run exports its telemetry artifacts there.
    Both instrumentations observe without perturbing (no RNG draws, no
    behaviour changes), so results are bit-identical either way; with
    everything off, this constructs :class:`OmegaNetworkSimulator`
    directly and carries zero instrumentation overhead.

    Sanitizing and tracing both claim the buffer classes via
    ``__class__`` adoption, so combining them is rejected rather than
    silently half-applied.
    """
    if sanitize is None:
        sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
    trace_dir: str | None
    metrics_dir: str | None
    if trace is None:
        from repro.telemetry.session import metrics_directory, trace_directory

        trace_dir = trace_directory()
        metrics_dir = metrics_directory()
    else:
        trace_dir = "" if trace else None
        metrics_dir = None
    if trace_dir is None and metrics_dir is None:
        if not sanitize:
            return OmegaNetworkSimulator(config)
        from repro.analysis.sanitizer import SanitizedOmegaNetworkSimulator

        return SanitizedOmegaNetworkSimulator(config)
    if sanitize:
        raise ConfigurationError(
            "REPRO_SANITIZE and REPRO_TRACE/REPRO_METRICS are mutually "
            "exclusive: both instrument the buffer classes via __class__ "
            "adoption; run them in separate passes"
        )
    from repro.telemetry.session import TraceSession
    from repro.telemetry.simulator import TracedOmegaNetworkSimulator

    if trace_dir is not None:
        session = TraceSession()
        export = trace_dir
    else:
        session = TraceSession(capacity=0)
        export = metrics_dir or ""
    return TracedOmegaNetworkSimulator(
        config, session=session, export_dir=export or None
    )


def simulate(
    config: NetworkConfig,
    warmup_cycles: int = 2000,
    measure_cycles: int = 10000,
    sanitize: bool | None = None,
    checkpoint_every: int | None = None,
    checkpoint_path: str | Path | None = None,
    backend: str | None = None,
) -> SimulationResult:
    """Build a simulator for ``config`` and run it once.

    ``sanitize`` as in :func:`make_simulator`; sanitized runs produce
    bit-identical results and additionally surface hardware-model
    violations through the simulator's sanitizer report.
    ``checkpoint_every``/``checkpoint_path`` as in
    :meth:`OmegaNetworkSimulator.run`.

    ``backend`` forces a simulation backend (``"reference"`` or
    ``"numpy"``); ``None`` honours the ``REPRO_BACKEND`` preference.
    Both backends produce byte-identical results; instrumented paths
    (sanitizer, telemetry, checkpointing) are implemented only by the
    reference simulator, so a forced numpy request combined with one of
    them raises :class:`~repro.errors.ConfigurationError` while a mere
    preference silently falls back — the resolution rules of
    :func:`repro.kernel.base.resolve_backend`.
    """
    from repro.kernel.base import resolve_backend
    from repro.telemetry.session import metrics_directory, trace_directory

    effective_sanitize = (
        sanitize
        if sanitize is not None
        else os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
    )
    tracing = (
        trace_directory() is not None or metrics_directory() is not None
    )
    checkpointing = (
        checkpoint_every is not None and checkpoint_path is not None
    )
    resolved = resolve_backend(
        config,
        backend,
        sanitize=effective_sanitize,
        trace=tracing,
        checkpoint=checkpointing,
    )
    if resolved == "numpy":
        from repro.kernel.numpy_kernel import NumpyKernel

        return NumpyKernel(config).run(warmup_cycles, measure_cycles)
    return make_simulator(config, sanitize).run(
        warmup_cycles,
        measure_cycles,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
    )


def load_checkpoint(path: str | Path) -> dict[str, Any]:
    """Read and validate a checkpoint document written by ``run``."""
    document: dict[str, Any] = json.loads(Path(path).read_text())
    if document.get("format") != SNAPSHOT_VERSION:
        raise ConfigurationError(
            f"checkpoint {path} has format {document.get('format')!r}, "
            f"expected {SNAPSHOT_VERSION}"
        )
    return document


def restore_simulator(
    state: dict[str, Any], sanitize: bool | None = None
) -> OmegaNetworkSimulator:
    """Rebuild a simulator from a :meth:`OmegaNetworkSimulator.snapshot`.

    A fresh simulator is constructed from the snapshot's own config and
    the snapshot restored into it, so the result is valid under either
    the plain or the sanitized class — snapshots themselves are
    sanitizer-agnostic (the sanitizer holds no simulation state).
    """
    config = NetworkConfig.from_state(state["config"])
    simulator = make_simulator(config, sanitize)
    simulator.restore(state)
    return simulator


def resume_run(
    path: str | Path, sanitize: bool | None = None
) -> SimulationResult:
    """Resume an interrupted run from its last checkpoint file.

    The finished result is bit-identical to the uninterrupted run:
    the checkpoint captures every RNG stream, register and accumulator,
    and the resumed ``run`` keeps checkpointing on the original cadence.
    """
    document = load_checkpoint(path)
    simulator = restore_simulator(document["state"], sanitize)
    return simulator.run(
        document["warmup_cycles"],
        document["measure_cycles"],
        checkpoint_every=document["checkpoint_every"],
        checkpoint_path=path,
    )
