"""Traffic patterns for the Omega-network evaluation.

The paper drives the network with two patterns (Section 4.2):

* **uniform** — every generated packet picks a destination uniformly at
  random among the network outputs;
* **hot spot** — following Pfister & Norton, a fixed fraction (5%) of all
  traffic is redirected to one designated "hot" output, the rest remains
  uniform.

Both are instances of :class:`TrafficPattern`; additional patterns used by
the extension benchmarks (bit-reversal style permutation, fixed-pairs) are
provided for completeness.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigurationError
from repro.utils.rng import RandomStream

__all__ = [
    "TrafficPattern",
    "UniformTraffic",
    "HotSpotTraffic",
    "PermutationTraffic",
    "make_traffic",
]


class TrafficPattern(ABC):
    """Chooses a destination for each packet a source generates."""

    #: Short name used in experiment tables.
    kind: str = "abstract"

    def __init__(self, num_ports: int) -> None:
        if num_ports < 2:
            raise ConfigurationError("traffic needs at least two ports")
        self.num_ports = num_ports

    @abstractmethod
    def destination(self, source: int, rng: RandomStream) -> int:
        """Destination for the next packet generated at ``source``."""


class UniformTraffic(TrafficPattern):
    """Uniformly random destinations (the paper's base workload)."""

    kind = "uniform"

    def destination(self, source: int, rng: RandomStream) -> int:
        return rng.randint(0, self.num_ports)


class HotSpotTraffic(TrafficPattern):
    """Pfister/Norton hot-spot traffic.

    Each packet goes to the hot output with probability ``hot_fraction``
    and to a uniformly random output otherwise (the uniform component may
    also land on the hot output, exactly as in the original model).

    Parameters
    ----------
    hot_fraction:
        Fraction of traffic redirected to the hot spot (0.05 in Table 6).
    hot_port:
        Index of the hot output (defaults to 0).
    """

    kind = "hotspot"

    def __init__(
        self, num_ports: int, hot_fraction: float = 0.05, hot_port: int = 0
    ) -> None:
        super().__init__(num_ports)
        if not 0.0 <= hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot_fraction out of range: {hot_fraction}"
            )
        if not 0 <= hot_port < num_ports:
            raise ConfigurationError(f"hot_port {hot_port} out of range")
        self.hot_fraction = hot_fraction
        self.hot_port = hot_port

    def destination(self, source: int, rng: RandomStream) -> int:
        if rng.bernoulli(self.hot_fraction):
            return self.hot_port
        return rng.randint(0, self.num_ports)


class PermutationTraffic(TrafficPattern):
    """Every source always sends to one fixed destination.

    With the identity-free "bit reversal"-style mapping used here each
    output receives from exactly one input, so the pattern is contention
    free end-to-end *outside* the network; any contention that appears is
    internal blocking.  Used by the extension benchmarks.
    """

    kind = "permutation"

    def __init__(self, num_ports: int, mapping: list[int] | None = None) -> None:
        super().__init__(num_ports)
        if mapping is None:
            mapping = [(num_ports - 1 - port) for port in range(num_ports)]
        if sorted(mapping) != list(range(num_ports)):
            raise ConfigurationError("mapping is not a permutation")
        self.mapping = list(mapping)

    def destination(self, source: int, rng: RandomStream) -> int:
        return self.mapping[source]


def make_traffic(
    kind: str,
    num_ports: int,
    hot_fraction: float = 0.05,
    hot_port: int = 0,
) -> TrafficPattern:
    """Construct a traffic pattern by table name."""
    normalized = kind.lower()
    if normalized == "uniform":
        return UniformTraffic(num_ports)
    if normalized in ("hotspot", "hot-spot", "hot_spot"):
        return HotSpotTraffic(num_ports, hot_fraction, hot_port)
    if normalized == "permutation":
        return PermutationTraffic(num_ports)
    raise ConfigurationError(f"unknown traffic kind {kind!r}")
