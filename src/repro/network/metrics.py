"""Measurement machinery and result records for network simulations."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.utils.stats import OnlineStats

__all__ = ["Meters", "SimulationResult"]


@dataclass
class Meters:
    """Raw counters accumulated during the measurement window."""

    num_ports: int
    cycles: int = 0
    generated: int = 0
    injected: int = 0
    delivered: int = 0
    discarded: int = 0
    #: Packets destroyed by injected link faults (fault campaigns only).
    lost: int = 0
    #: Latency from packet creation to delivery, clock cycles.
    latency: OnlineStats = field(default_factory=OnlineStats)
    #: Latency from injection into stage 0 to delivery, clock cycles.
    network_latency: OnlineStats = field(default_factory=OnlineStats)
    #: Buffer occupancy across the whole network, sampled once per cycle.
    occupancy: OnlineStats = field(default_factory=OnlineStats)

    def normalized(self, count: int) -> float:
        """Events per cycle per port (the paper's link-capacity fraction)."""
        if self.cycles == 0:
            return math.nan
        return count / (self.cycles * self.num_ports)

    @property
    def delivered_throughput(self) -> float:
        """Delivered packets per cycle per port."""
        return self.normalized(self.delivered)

    @property
    def offered_throughput(self) -> float:
        """Generated packets per cycle per port (the input throughput)."""
        return self.normalized(self.generated)

    @property
    def discard_fraction(self) -> float:
        """Fraction of generated packets that were discarded."""
        if self.generated == 0:
            return math.nan
        return self.discarded / self.generated

    @property
    def loss_fraction(self) -> float:
        """Fraction of generated packets destroyed by injected faults."""
        if self.generated == 0:
            return math.nan
        return self.lost / self.generated

    # -- checkpoint serialization ------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        """Every counter plus the exact Welford state of each accumulator."""
        return {
            "num_ports": self.num_ports,
            "cycles": self.cycles,
            "generated": self.generated,
            "injected": self.injected,
            "delivered": self.delivered,
            "discarded": self.discarded,
            "lost": self.lost,
            "latency": self.latency.get_state(),
            "network_latency": self.network_latency.get_state(),
            "occupancy": self.occupancy.get_state(),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Overwrite the meters with a :meth:`snapshot_state` dict."""
        self.num_ports = state["num_ports"]
        self.cycles = state["cycles"]
        self.generated = state["generated"]
        self.injected = state["injected"]
        self.delivered = state["delivered"]
        self.discarded = state["discarded"]
        self.lost = state["lost"]
        self.latency.set_state(state["latency"])
        self.network_latency.set_state(state["network_latency"])
        self.occupancy.set_state(state["occupancy"])


@dataclass
class SimulationResult:
    """Summary of one simulation run (one table cell's worth of data)."""

    buffer_kind: str
    protocol: str
    arbiter_kind: str
    traffic_kind: str
    offered_load: float
    slots_per_buffer: int
    warmup_cycles: int
    measure_cycles: int
    seed: int
    meters: Meters

    @property
    def offered_throughput(self) -> float:
        """Measured generation rate (≈ offered load below saturation)."""
        return self.meters.offered_throughput

    @property
    def delivered_throughput(self) -> float:
        """Measured delivery rate per cycle per port."""
        return self.meters.delivered_throughput

    @property
    def discard_fraction(self) -> float:
        """Fraction of generated packets dropped (discarding protocol)."""
        return self.meters.discard_fraction

    @property
    def discard_percent(self) -> float:
        """Discard fraction in percent, the unit of Table 3."""
        return 100.0 * self.discard_fraction

    @property
    def average_latency(self) -> float:
        """Mean creation-to-delivery latency in clock cycles (Tables 4-6)."""
        return self.meters.latency.mean

    @property
    def average_network_latency(self) -> float:
        """Mean injection-to-delivery latency in clock cycles."""
        return self.meters.network_latency.mean

    def to_state(self) -> dict[str, Any]:
        """Every field as a JSON-able dict (digests, baselines).

        The meters are expanded through :meth:`Meters.snapshot_state`,
        so two results serialize identically iff every counter and the
        exact Welford state of every accumulator agree — the equality
        the cross-backend equivalence tests pin.
        """
        return {
            "buffer_kind": self.buffer_kind,
            "protocol": self.protocol,
            "arbiter_kind": self.arbiter_kind,
            "traffic_kind": self.traffic_kind,
            "offered_load": self.offered_load,
            "slots_per_buffer": self.slots_per_buffer,
            "warmup_cycles": self.warmup_cycles,
            "measure_cycles": self.measure_cycles,
            "seed": self.seed,
            "meters": self.meters.snapshot_state(),
        }

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.buffer_kind:5s} {self.protocol:10s} {self.arbiter_kind:5s} "
            f"{self.traffic_kind:8s} offered={self.offered_load:.2f} "
            f"delivered={self.delivered_throughput:.3f} "
            f"discard={self.discard_percent:.2f}% "
            f"latency={self.average_latency:.2f}"
        )
