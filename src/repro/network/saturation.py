"""Saturation-throughput measurement and latency/throughput curves.

The paper characterizes each buffer architecture by (a) its average
latency at sub-saturation throughputs and (b) the throughput at which the
network *saturates* — the knee past which latency explodes (Figure 3,
Tables 4-6).

With blocking flow control and generators that stall behind a finite
injection queue, the delivered throughput is self-limiting: offering a
load of 1.0 measures the network's maximum sustainable (saturation)
throughput directly, and the latency observed there is the "saturated"
latency the paper tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.network.metrics import SimulationResult
from repro.network.simulator import NetworkConfig
from repro.perf.parallel import parallel_simulate

__all__ = [
    "SaturationResult",
    "CurvePoint",
    "measure_saturation",
    "measure_saturation_grid",
    "latency_throughput_curve",
]


@dataclass(frozen=True)
class SaturationResult:
    """Saturation point of one configuration."""

    buffer_kind: str
    slots_per_buffer: int
    traffic_kind: str
    saturation_throughput: float
    saturated_latency: float

    def describe(self) -> str:
        """One-line summary matching the paper's table columns."""
        return (
            f"{self.buffer_kind:5s} slots={self.slots_per_buffer} "
            f"{self.traffic_kind:8s} saturation={self.saturation_throughput:.2f} "
            f"saturated latency={self.saturated_latency:.2f}"
        )


@dataclass(frozen=True)
class CurvePoint:
    """One point of a latency/throughput curve (Figure 3)."""

    offered_load: float
    delivered_throughput: float
    average_latency: float
    #: Normal-approximation 95% half-width on the mean latency (nan when
    #: fewer than two packets were delivered).
    latency_half_width: float = float("nan")


def measure_saturation(
    config: NetworkConfig,
    warmup_cycles: int = 2000,
    measure_cycles: int = 10000,
) -> SaturationResult:
    """Drive the network at full offered load and read off the plateau.

    The generators are never idle at offered load 1.0, so the delivered
    throughput equals the network's maximum sustainable throughput and the
    mean latency is the saturated latency (finite, because the injection
    queue bounds per-packet waiting at the source).
    """
    return measure_saturation_grid([config], warmup_cycles, measure_cycles)[0]


def measure_saturation_grid(
    configs: Sequence[NetworkConfig],
    warmup_cycles: int = 2000,
    measure_cycles: int = 10000,
    jobs: int | None = 1,
) -> list[SaturationResult]:
    """Saturation point of every config, fanned over ``jobs`` processes.

    The grid-shaped experiments (Tables 4-6, the radix/varlen extensions)
    all sweep independent configurations; this batches their saturation
    runs through :func:`repro.perf.parallel_simulate`.
    """
    results = parallel_simulate(
        [config.with_overrides(offered_load=1.0) for config in configs],
        warmup_cycles,
        measure_cycles,
        jobs=jobs,
    )
    return [
        SaturationResult(
            buffer_kind=config.buffer_kind,
            slots_per_buffer=config.slots_per_buffer,
            traffic_kind=config.traffic_kind,
            saturation_throughput=result.delivered_throughput,
            saturated_latency=result.average_latency,
        )
        for config, result in zip(configs, results)
    ]


def latency_throughput_curve(
    config: NetworkConfig,
    offered_loads: list[float],
    warmup_cycles: int = 2000,
    measure_cycles: int = 10000,
    jobs: int | None = 1,
) -> list[CurvePoint]:
    """Sweep offered load and collect (delivered, latency) pairs.

    This regenerates the characteristic curve of Figure 3: flat latency up
    to the saturation throughput, then a nearly vertical wall (delivered
    throughput stops increasing while latency keeps climbing).  The sweep
    points are independent runs, so ``jobs`` fans them over processes.
    """
    results: list[SimulationResult] = parallel_simulate(
        [config.with_overrides(offered_load=load) for load in offered_loads],
        warmup_cycles,
        measure_cycles,
        jobs=jobs,
    )
    return [
        CurvePoint(
            offered_load=load,
            delivered_throughput=result.delivered_throughput,
            average_latency=result.average_latency,
            latency_half_width=result.meters.latency.mean_half_width(),
        )
        for load, result in zip(offered_loads, results)
    ]
