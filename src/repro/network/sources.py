"""Message generators and receivers at the edge of the network.

"In our simulation, the processors were simply message generators and the
memories message receivers" (Section 4.2).  :class:`Source` models one
processor: a Bernoulli generator producing at the offered load, in front of
a small injection queue.  Under the *blocking* protocol the generator
stalls while its injection queue is full — this is what caps delivered
throughput at the network's saturation point and keeps measured latencies
finite there.  Under the *discarding* protocol there is no injection queue:
a packet that cannot enter stage 0 is dropped on the spot.

:class:`Sink` models one memory module: it accepts any packet instantly and
feeds the latency/throughput accounting.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.core.packet import Packet, PacketFactory
from repro.errors import ConfigurationError
from repro.network.topology import OmegaTopology
from repro.network.traffic import TrafficPattern
from repro.utils.rng import BatchedBernoulli, RandomStream

__all__ = ["Source", "Sink"]


class Source:
    """One processor-side packet generator with an injection queue.

    Parameters
    ----------
    port:
        Network input index this source feeds.
    offered_load:
        Probability of generating a packet in a network cycle (fraction of
        link capacity, the paper's traffic axis).
    topology:
        Used to pre-compute each packet's self-routing tag.
    pattern:
        Destination chooser.
    factory:
        Shared packet factory (unique ids network-wide).
    rng:
        Private random stream.
    queue_capacity:
        Injection-queue depth for the blocking protocol.  The generator
        stalls (generates nothing) while the queue is full, modeling a
        processor that cannot push more work into a clogged network.
        ``0`` means no queue (discarding protocol).
    cycle_clocks:
        Clock cycles per network cycle (12 in the paper).
    packet_size:
        Slots per generated packet (1 = the paper's fixed-length packets).
    packet_size_max:
        When set (> ``packet_size``), each packet's size is drawn
        uniformly from ``[packet_size, packet_size_max]`` — the
        variable-length traffic the paper names as the DAMQ's real target.
    """

    def __init__(
        self,
        port: int,
        offered_load: float,
        topology: OmegaTopology,
        pattern: TrafficPattern,
        factory: PacketFactory,
        rng: RandomStream,
        queue_capacity: int = 4,
        cycle_clocks: int = 12,
        packet_size: int = 1,
        packet_size_max: int | None = None,
    ) -> None:
        if not 0.0 <= offered_load <= 1.0:
            raise ConfigurationError(f"offered load out of range: {offered_load}")
        if queue_capacity < 0:
            raise ConfigurationError("queue capacity cannot be negative")
        if packet_size_max is not None and packet_size_max < packet_size:
            raise ConfigurationError(
                "packet_size_max must be at least packet_size"
            )
        self.port = port
        self.offered_load = offered_load
        self.topology = topology
        self.pattern = pattern
        self.factory = factory
        self.rng = rng
        self.queue_capacity = queue_capacity
        self.cycle_clocks = cycle_clocks
        self.packet_size = packet_size
        self.packet_size_max = packet_size_max
        self.queue: deque[Packet] = deque()
        self.generated = 0
        self.stalled_cycles = 0
        # Amortized Bernoulli coin; draws are bit-identical to calling
        # ``rng.bernoulli(offered_load)`` every cycle.
        self._coin = BatchedBernoulli(rng, offered_load)

    def maybe_generate(self, cycle: int) -> Packet | None:
        """Run one cycle of the Bernoulli generator.

        Returns the freshly generated packet (also queued), or ``None`` if
        the coin came up tails or the generator is stalled by a full
        injection queue.
        """
        if self.queue_capacity and len(self.queue) >= self.queue_capacity:
            self.stalled_cycles += 1
            return None
        if not self._coin.draw():
            return None
        rng = self.rng
        destination = self.pattern.destination(self.port, rng)
        # Creation instant is uniform inside the cycle's clock frame; the
        # packet becomes eligible for injection at the frame boundary.
        offset = rng.randint(0, self.cycle_clocks)
        if self.packet_size_max is None:
            size = self.packet_size
        else:
            size = rng.randint(self.packet_size, self.packet_size_max + 1)
        packet = self.factory.create(
            source=self.port,
            destination=destination,
            created_at=cycle * self.cycle_clocks + offset,
            route=self.topology.route(self.port, destination),
            size=size,
        )
        self.generated += 1
        self.queue.append(packet)
        return packet

    def head(self) -> Packet | None:
        """Packet waiting to be injected (``None`` when idle)."""
        return self.queue[0] if self.queue else None

    def dequeue(self) -> Packet:
        """Remove the head packet after a successful injection."""
        return self.queue.popleft()

    def reset_counters(self) -> None:
        """Zero the generation counters (end of warm-up)."""
        self.generated = 0
        self.stalled_cycles = 0

    # -- checkpoint serialization ------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        """Injection queue, counters and the *flushed* RNG state.

        Flushing the batched coin first rewinds its pre-drawn block to
        the scalar-equivalent generator state — a draw-for-draw no-op —
        so the raw RNG state alone captures the coin, and a fresh coin
        (empty block) built over the restored stream continues the exact
        draw sequence.
        """
        self._coin.flush()
        return {
            "rng": self.rng.get_state(),
            "queue": [packet.to_state() for packet in self.queue],
            "generated": self.generated,
            "stalled_cycles": self.stalled_cycles,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Overwrite this source with a :meth:`snapshot_state` dict."""
        # Drop any pre-drawn coin block *before* installing the saved RNG
        # state: the flush's rewind applies to the old state, which the
        # set_state below then overwrites.
        self._coin.flush()
        self.rng.set_state(state["rng"])
        self.queue.clear()
        for packet_state in state["queue"]:
            self.queue.append(Packet.from_state(packet_state))
        self.generated = state["generated"]
        self.stalled_cycles = state["stalled_cycles"]


class Sink:
    """One memory-side receiver; accepts every packet immediately."""

    def __init__(self, port: int, cycle_clocks: int = 12) -> None:
        self.port = port
        self.cycle_clocks = cycle_clocks
        self.received = 0
        self.misrouted = 0

    def deliver(self, packet: Packet, cycle: int) -> None:
        """Accept a packet at the end of ``cycle``."""
        packet.delivered_at = (cycle + 1) * self.cycle_clocks
        self.received += 1
        if packet.destination != self.port:
            self.misrouted += 1

    def reset_counters(self) -> None:
        """Zero the delivery counters (end of warm-up)."""
        self.received = 0
        self.misrouted = 0

    # -- checkpoint serialization ------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        """Delivery counters, JSON-able."""
        return {"received": self.received, "misrouted": self.misrouted}

    def restore_state(self, state: dict[str, Any]) -> None:
        """Overwrite the counters with a :meth:`snapshot_state` dict."""
        self.received = state["received"]
        self.misrouted = state["misrouted"]
