"""Omega multistage interconnection network simulation (Section 4.2)."""

from repro.network.metrics import Meters, SimulationResult
from repro.network.saturation import (
    CurvePoint,
    SaturationResult,
    latency_throughput_curve,
    measure_saturation,
    measure_saturation_grid,
)
from repro.network.simulator import (
    NetworkConfig,
    OmegaNetworkSimulator,
    simulate,
)
from repro.network.sources import Sink, Source
from repro.network.topology import OmegaTopology, PortLocation
from repro.network.traffic import (
    HotSpotTraffic,
    PermutationTraffic,
    TrafficPattern,
    UniformTraffic,
    make_traffic,
)

__all__ = [
    "CurvePoint",
    "HotSpotTraffic",
    "Meters",
    "NetworkConfig",
    "OmegaNetworkSimulator",
    "OmegaTopology",
    "PermutationTraffic",
    "PortLocation",
    "SaturationResult",
    "SimulationResult",
    "Sink",
    "Source",
    "TrafficPattern",
    "UniformTraffic",
    "latency_throughput_curve",
    "make_traffic",
    "measure_saturation",
    "measure_saturation_grid",
    "simulate",
]
