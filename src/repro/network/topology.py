"""Omega-network topology (Lawrie 1975), as used in Section 4.2.

An Omega network with ``N = k**n`` ports is built from ``n`` stages of
``N/k`` identical ``k×k`` switches, with the *perfect k-shuffle*
permutation wiring the network inputs to stage 0 and each stage to the
next.  The paper simulates ``N = 64`` with ``k = 4`` (three stages of
sixteen 4×4 switches).

The network is *self-routing*: writing the destination in base ``k`` as
``d_{n-1} … d_0``, the switch at stage ``s`` must forward the packet out of
local output ``d_{n-1-s}`` (most-significant digit first).  After the last
stage the packet emerges exactly on link ``destination`` — a property the
test suite checks exhaustively for several network sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, RoutingError

__all__ = ["OmegaTopology", "PortLocation"]


@dataclass(frozen=True)
class PortLocation:
    """A (switch index, port index) pair within one stage."""

    switch: int
    port: int


class OmegaTopology:
    """Structure and routing of a ``k``-ary Omega network.

    Parameters
    ----------
    num_ports:
        Number of network inputs (= outputs).  Must be a power of ``radix``.
    radix:
        Switch arity ``k`` (4 in the paper's evaluation).
    """

    def __init__(self, num_ports: int, radix: int) -> None:
        if radix < 2:
            raise ConfigurationError("radix must be at least 2")
        if num_ports < radix:
            raise ConfigurationError("need at least one switch worth of ports")
        stages = 0
        size = 1
        while size < num_ports:
            size *= radix
            stages += 1
        if size != num_ports:
            raise ConfigurationError(
                f"num_ports={num_ports} is not a power of radix={radix}"
            )
        self.num_ports = num_ports
        self.radix = radix
        self.num_stages = stages
        self.switches_per_stage = num_ports // radix
        # Routes depend only on the destination digits, so one tuple per
        # destination serves every packet (memoized on first use).
        self._route_cache: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def shuffle(self, link: int) -> int:
        """Perfect k-shuffle of a link label (left-rotate its base-k digits)."""
        self._check_link(link)
        return (link * self.radix) % self.num_ports + (
            link * self.radix
        ) // self.num_ports

    def unshuffle(self, link: int) -> int:
        """Inverse of :meth:`shuffle` (right-rotate the base-k digits)."""
        self._check_link(link)
        return (link // self.radix) + (link % self.radix) * (
            self.num_ports // self.radix
        )

    def entry_point(self, source: int) -> PortLocation:
        """Stage-0 switch input reached by network input ``source``."""
        self._check_link(source)
        link = self.shuffle(source)
        return PortLocation(switch=link // self.radix, port=link % self.radix)

    def next_hop(self, stage: int, switch: int, output_port: int) -> PortLocation:
        """Stage ``stage+1`` input wired to an output of stage ``stage``.

        Only defined for non-final stages; the final stage's outputs are
        the network outputs (see :meth:`exit_link`).
        """
        self._check_stage(stage)
        if stage == self.num_stages - 1:
            raise RoutingError("the final stage has no next hop")
        link = self.shuffle(switch * self.radix + output_port)
        return PortLocation(switch=link // self.radix, port=link % self.radix)

    def exit_link(self, switch: int, output_port: int) -> int:
        """Network output reached from a final-stage switch output."""
        return switch * self.radix + output_port

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(self, source: int, destination: int) -> tuple[int, ...]:
        """Local output port to take at each stage (destination-digit rule)."""
        self._check_link(source)
        cached = self._route_cache.get(destination)
        if cached is not None:
            return cached
        self._check_link(destination)
        digits = []
        value = destination
        for _ in range(self.num_stages):
            digits.append(value % self.radix)
            value //= self.radix
        # Most-significant digit is consumed first.
        route = tuple(reversed(digits))
        self._route_cache[destination] = route
        return route

    def trace(self, source: int, destination: int) -> list[PortLocation]:
        """The (switch, input port) visited at every stage.

        Used by tests to verify the self-routing property and by the
        hot-spot experiments to identify the saturation tree.
        """
        route = self.route(source, destination)
        location = self.entry_point(source)
        visits = [location]
        for stage, output_port in enumerate(route[:-1]):
            location = self.next_hop(stage, location.switch, output_port)
            visits.append(location)
        return visits

    def delivered_output(self, source: int, destination: int) -> int:
        """Network output a packet emerges on (must equal ``destination``)."""
        route = self.route(source, destination)
        visits = self.trace(source, destination)
        final = visits[-1]
        return self.exit_link(final.switch, route[-1])

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------

    def _check_link(self, link: int) -> None:
        if not 0 <= link < self.num_ports:
            raise ConfigurationError(
                f"link {link} out of range [0, {self.num_ports})"
            )

    def _check_stage(self, stage: int) -> None:
        if not 0 <= stage < self.num_stages:
            raise ConfigurationError(
                f"stage {stage} out of range [0, {self.num_stages})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"OmegaTopology({self.num_ports} ports, radix {self.radix}, "
            f"{self.num_stages} stages of {self.switches_per_stage})"
        )
