"""Registry and driver for all paper experiments."""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.experiments import (
    ext_faults,
    ext_radix,
    ext_slotsize,
    ext_validation,
    ext_varlen,
    figure1,
    figure3,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.report import ExperimentResult

__all__ = ["EXPERIMENTS", "PAPER_EXPERIMENTS", "run_experiment", "run_all"]

#: The paper's own artifacts, by id.
PAPER_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "figure1": figure1.run,
    "figure3": figure3.run,
}

#: All experiments: the paper's plus this reproduction's extensions.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    **PAPER_EXPERIMENTS,
    "ext-varlen": ext_varlen.run,
    "ext-slotsize": ext_slotsize.run,
    "ext-validation": ext_validation.run,
    "ext-radix": ext_radix.run,
    "ext-faults": ext_faults.run,
}


def run_experiment(
    experiment_id: str,
    quick: bool = False,
    seed: int = 1988,
    jobs: int | None = 1,
) -> ExperimentResult:
    """Run one experiment by id ("table2", "figure3", ...).

    ``jobs`` fans each experiment's independent simulation grid over that
    many worker processes (``None``/``0`` = one per CPU).  Per-config
    seeding makes the results byte-identical to a ``jobs=1`` run.
    """
    try:
        runner = EXPERIMENTS[experiment_id.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner(quick=quick, seed=seed, jobs=jobs)


def run_all(
    quick: bool = False, seed: int = 1988, jobs: int | None = 1
) -> list[ExperimentResult]:
    """Run every experiment in paper order."""
    return [
        run_experiment(experiment_id, quick=quick, seed=seed, jobs=jobs)
        for experiment_id in EXPERIMENTS
    ]
