"""Registry and driver for all paper experiments."""

from __future__ import annotations

from collections.abc import Callable
from pathlib import Path
from typing import Any

from repro.cache.runtime import CacheContext, activate
from repro.cache.store import ResultCache
from repro.errors import ConfigurationError
from repro.experiments import (
    ext_arch,
    ext_faults,
    ext_radix,
    ext_slotsize,
    ext_validation,
    ext_varlen,
    figure1,
    figure3,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.report import ExperimentResult

__all__ = ["EXPERIMENTS", "PAPER_EXPERIMENTS", "run_experiment", "run_all"]

#: The paper's own artifacts, by id.
PAPER_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "figure1": figure1.run,
    "figure3": figure3.run,
}

#: All experiments: the paper's plus this reproduction's extensions.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    **PAPER_EXPERIMENTS,
    "ext-varlen": ext_varlen.run,
    "ext-slotsize": ext_slotsize.run,
    "ext-validation": ext_validation.run,
    "ext-radix": ext_radix.run,
    "ext-faults": ext_faults.run,
    "ext-arch": ext_arch.run,
}


def run_experiment(
    experiment_id: str,
    quick: bool = False,
    seed: int = 1988,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    checkpoint_every: int | None = None,
    checkpoint_dir: str | Path | None = None,
    dispatcher: Callable[[Callable[[Any], Any], list[Any]], list[Any]]
    | None = None,
    backend: str | None = None,
) -> ExperimentResult:
    """Run one experiment by id ("table2", "figure3", ...).

    ``jobs`` fans each experiment's independent simulation grid over that
    many worker processes (``None``/``0`` = one per CPU).  Per-config
    seeding makes the results byte-identical to a ``jobs=1`` run.

    ``cache`` memoizes the experiment's per-config simulations in a
    content-addressed store: a warm re-run serves every result from the
    cache, byte-identical, without dispatching a single simulation.
    ``checkpoint_every``/``checkpoint_dir`` make each simulation write
    periodic checkpoints so a dead worker's replacement resumes
    mid-run instead of restarting.  Neither option changes the results
    in any bit.

    ``dispatcher`` replaces the mapper's own process pool with an
    external executor ``(fn, items) -> results`` — the simulation
    service passes its supervised worker pool here so every grid point
    runs under heartbeat monitoring and bounded, backed-off retries.

    ``backend`` forces a simulation backend for every grid the
    experiment fans out (``"reference"`` or ``"numpy"``); ``None``
    honours the ``REPRO_BACKEND`` preference.  Results are
    byte-identical across backends — a forced numpy request merely
    raises :class:`ConfigurationError` when combined with a feature the
    vectorized kernel does not implement.
    """
    experiment_id = experiment_id.lower()
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {sorted(EXPERIMENTS)}"
        ) from None
    if backend is not None:
        from repro.kernel.base import normalize_backend

        backend = normalize_backend(backend)
    context = CacheContext(
        cache,
        experiment_id,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        dispatcher=dispatcher,
        backend=backend,
    )
    with activate(context):
        return runner(quick=quick, seed=seed, jobs=jobs)


def run_all(
    quick: bool = False,
    seed: int = 1988,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    checkpoint_every: int | None = None,
    checkpoint_dir: str | Path | None = None,
    backend: str | None = None,
) -> list[ExperimentResult]:
    """Run every experiment in paper order (options as
    :func:`run_experiment`; all experiments share one ``cache``)."""
    return [
        run_experiment(
            experiment_id,
            quick=quick,
            seed=seed,
            jobs=jobs,
            cache=cache,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            backend=backend,
        )
        for experiment_id in EXPERIMENTS
    ]
