"""Table 6 — 5% hot-spot traffic: tree saturation levels every buffer.

With five percent of all packets aimed at one memory module, the hot
output link's capacity bounds the whole network: every architecture tree-
saturates at nearly the same offered load (just under 0.25 for 64 ports),
and below that point their latencies are nearly identical.  The buffer
architecture cannot fix hot-spot contention — the paper's argument for the
RP3's separate combining network.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, sim_cycles
from repro.network import NetworkConfig, measure_saturation_grid
from repro.perf import parallel_simulate
from repro.switch.flow_control import Protocol
from repro.utils.tables import TextTable, format_value

__all__ = ["run", "PAPER_HOT_LOADS", "HOT_FRACTION"]

_KIND_ORDER = ("FIFO", "SAMQ", "SAFC", "DAMQ")

#: Sub-saturation throughput columns of the paper's table.
PAPER_HOT_LOADS = (0.125, 0.20)

#: Fraction of traffic aimed at the hot module (Pfister & Norton's 5%).
HOT_FRACTION = 0.05


def run(
    quick: bool = False, seed: int = 1988, jobs: int | None = 1
) -> ExperimentResult:
    """Regenerate Table 6."""
    warmup, measure = sim_cycles(quick)
    loads = (PAPER_HOT_LOADS[0],) if quick else PAPER_HOT_LOADS
    result = ExperimentResult(
        experiment_id="table6",
        title="Average latency with 5% hot-spot traffic (four slots)",
        paper_reference="Table 6, Section 4.2.1",
    )
    columns = (
        ["Buffer"]
        + [f"lat @{load:.3f}" for load in loads]
        + ["saturated lat", "saturation throughput"]
    )
    table = TextTable("Hot-spot latencies (clock cycles)", columns)
    base = NetworkConfig(
        slots_per_buffer=4,
        protocol=Protocol.BLOCKING,
        arbiter_kind="smart",
        traffic_kind="hotspot",
        hot_fraction=HOT_FRACTION,
        seed=seed,
    )
    data: dict[str, dict] = {}
    grid = [(kind, load) for kind in _KIND_ORDER for load in loads]
    sims = parallel_simulate(
        [
            base.with_overrides(buffer_kind=kind, offered_load=load)
            for kind, load in grid
        ],
        warmup,
        measure,
        jobs=jobs,
    )
    latencies_by_kind: dict[str, dict] = {kind: {} for kind in _KIND_ORDER}
    for (kind, load), sim in zip(grid, sims):
        latencies_by_kind[kind][load] = sim.average_latency
    saturations = measure_saturation_grid(
        [base.with_overrides(buffer_kind=kind) for kind in _KIND_ORDER],
        warmup,
        measure,
        jobs=jobs,
    )
    for kind, saturation in zip(_KIND_ORDER, saturations):
        latencies = latencies_by_kind[kind]
        data[kind] = {
            "latencies": latencies,
            "saturation_throughput": saturation.saturation_throughput,
            "saturated_latency": saturation.saturated_latency,
        }
        table.add_row(
            [kind]
            + [format_value(latencies[load], 2) for load in loads]
            + [
                format_value(saturation.saturated_latency, 2),
                format_value(saturation.saturation_throughput, 2),
            ]
        )
    result.tables.append(table)
    result.data["rows"] = data
    throughputs = [row["saturation_throughput"] for row in data.values()]
    result.data["saturation_spread"] = max(throughputs) - min(throughputs)
    result.notes.append(
        "All four architectures tree-saturate at nearly the same offered "
        "load (the hot link's capacity divided across 64 sources bounds "
        "the network at ~0.24), reproducing the paper's conclusion that "
        "buffer structure cannot mitigate hot spots."
    )
    return result
