"""Extension — variable-length packets (the paper's stated future work).

The conclusion of the paper: "We believe that the DAMQ buffer will
outperform its competition by an even wider margin for the more realistic
case of variable length packets."  This experiment tests that prediction:
packets occupy one to four buffer slots (uniformly), every architecture
gets the same 8-slot budget, and we compare saturation throughput against
the fixed-length baseline.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, sim_cycles
from repro.network import NetworkConfig, measure_saturation_grid
from repro.switch.flow_control import Protocol
from repro.utils.tables import TextTable, format_value

__all__ = ["run"]

_KIND_ORDER = ("FIFO", "SAMQ", "SAFC", "DAMQ")

#: Slots per buffer — large enough that a maximum-size packet fits a SAMQ
#: partition (8 / 4 outputs = 2 slots... so cap variable sizes at 2 for the
#: static designs' feasibility; see note below).
SLOTS = 8


def run(
    quick: bool = False, seed: int = 1988, jobs: int | None = 1
) -> ExperimentResult:
    """Compare fixed vs variable packet sizes across architectures.

    The statically partitioned buffers can only accept packets that fit a
    partition (2 slots at this budget), so the variable mix is uniform on
    {1, 2} slots; the fixed baseline uses 1-slot packets at the same
    buffer budget.
    """
    warmup, measure = sim_cycles(quick)
    result = ExperimentResult(
        experiment_id="ext-varlen",
        title="Extension: variable-length packets "
        "(uniform sizes 1-2 slots, 8 slots per buffer)",
        paper_reference="Conclusion (Section 5) — predicted wider DAMQ margin",
    )
    base = NetworkConfig(
        slots_per_buffer=SLOTS,
        protocol=Protocol.BLOCKING,
        arbiter_kind="smart",
        traffic_kind="uniform",
        seed=seed,
    )
    table = TextTable(
        "Saturation throughput (packets/cycle/port and slots/cycle/port)",
        [
            "Buffer",
            "fixed-size sat",
            "variable-size sat",
            "variable sat (slot units)",
        ],
    )
    data: dict[str, dict[str, float]] = {}
    mean_size = 1.5  # uniform on {1, 2}
    fixed_sats = measure_saturation_grid(
        [base.with_overrides(buffer_kind=kind) for kind in _KIND_ORDER],
        warmup, measure, jobs=jobs,
    )
    variable_sats = measure_saturation_grid(
        [
            base.with_overrides(buffer_kind=kind, packet_size_max=2)
            for kind in _KIND_ORDER
        ],
        warmup, measure, jobs=jobs,
    )
    for kind, fixed_sat, variable_sat in zip(
        _KIND_ORDER, fixed_sats, variable_sats
    ):
        fixed = fixed_sat.saturation_throughput
        variable = variable_sat.saturation_throughput
        data[kind] = {
            "fixed": fixed,
            "variable": variable,
            "variable_slots": variable * mean_size,
        }
        table.add_row(
            [
                kind,
                format_value(fixed, 3),
                format_value(variable, 3),
                format_value(variable * mean_size, 3),
            ]
        )
    result.tables.append(table)
    result.data["rows"] = data
    gap_fixed = data["DAMQ"]["fixed"] / data["FIFO"]["fixed"]
    gap_variable = data["DAMQ"]["variable"] / data["FIFO"]["variable"]
    result.data["gap_fixed"] = gap_fixed
    result.data["gap_variable"] = gap_variable
    result.notes.append(
        f"DAMQ/FIFO saturation ratio: {gap_fixed:.2f} with fixed sizes, "
        f"{gap_variable:.2f} with variable sizes."
    )
    result.notes.append(
        "Static partitions suffer doubly with variable sizes: a 2-slot "
        "packet needs its whole partition, while the DAMQ applies any two "
        "free slots."
    )

    # Second table: the same variable mix with store-and-forward link
    # serialization (a size-s packet holds its link for s cycles) — the
    # physically grounded variant.
    serialized = TextTable(
        "Variable sizes with link serialization "
        "(saturation, packets/cycle/port)",
        ["Buffer", "saturation", "slot units"],
    )
    serial_data: dict[str, float] = {}
    serialized_sats = measure_saturation_grid(
        [
            base.with_overrides(
                buffer_kind=kind, packet_size_max=2, serialize_links=True
            )
            for kind in _KIND_ORDER
        ],
        warmup, measure, jobs=jobs,
    )
    for kind, saturation in zip(_KIND_ORDER, serialized_sats):
        value = saturation.saturation_throughput
        serial_data[kind] = value
        serialized.add_row(
            [kind, format_value(value, 3), format_value(value * mean_size, 3)]
        )
    result.tables.append(serialized)
    result.data["serialized"] = serial_data
    result.data["gap_serialized"] = serial_data["DAMQ"] / serial_data["FIFO"]
    result.notes.append(
        f"With serialization the DAMQ/FIFO ratio is "
        f"{result.data['gap_serialized']:.2f}."
    )
    return result
