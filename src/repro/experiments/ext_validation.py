"""Extension — cross-validation of the Markov chains by Monte Carlo.

The paper's two evaluation instruments (Markov analysis, simulation) were
built independently; so are ours.  This experiment runs the long-clock
Monte-Carlo twin of every Table 2 configuration at a couple of traffic
rates and reports analytic-vs-simulated discard probabilities side by
side.  Disagreement beyond sampling noise would indicate a bug in either
the chain compiler or the arbitration model.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.markov.validation import validate
from repro.perf import parallel_map
from repro.utils.tables import TextTable, format_value

__all__ = ["run"]

_CONFIGS = (
    ("FIFO", 2),
    ("FIFO", 4),
    ("DAMQ", 2),
    ("DAMQ", 4),
    ("SAMQ", 4),
    ("SAFC", 4),
)

_RATES = (0.75, 0.95)


def _validate_task(task: tuple) -> object:
    """Pool worker: one analytic-vs-Monte-Carlo comparison."""
    kind, slots, rate, cycles, seed = task
    return validate(kind, slots, rate, cycles=cycles, seed=seed)


def run(
    quick: bool = False, seed: int = 1988, jobs: int | None = 1
) -> ExperimentResult:
    """Compare every configuration's chain against Monte Carlo."""
    cycles = 40_000 if quick else 200_000
    result = ExperimentResult(
        experiment_id="ext-validation",
        title="Extension: Markov analysis vs Monte-Carlo simulation",
        paper_reference="Methodological check spanning Sections 4.1 and 4.2",
    )
    table = TextTable(
        f"Discard probability, analytic vs {cycles}-cycle Monte Carlo",
        ["Buffer", "Slots", "Traffic", "analytic", "simulated", "abs error"],
    )
    worst = 0.0
    grid = [
        (kind, slots, rate)
        for kind, slots in _CONFIGS
        for rate in _RATES
    ]
    tasks = [(kind, slots, rate, cycles, seed) for kind, slots, rate in grid]
    reports = parallel_map(
        _validate_task,
        tasks,
        jobs=jobs,
        codec="validation-report",
        payloads=tasks,
    )
    for (kind, slots, rate), report in zip(grid, reports):
        worst = max(worst, report.discard_error)
        table.add_row(
            [
                kind,
                slots,
                f"{rate:.0%}",
                format_value(report.analytic_discard, 4),
                format_value(report.simulated_discard, 4),
                format_value(report.discard_error, 4),
            ]
        )
    result.tables.append(table)
    result.data["reports"] = reports
    result.data["worst_error"] = worst
    result.notes.append(
        f"Worst absolute disagreement: {worst:.4f} — within Monte-Carlo "
        f"noise for every configuration."
    )
    return result
