"""Extension — the architecture zoo head-to-head (``ext-arch``).

The paper's DAMQ line continued for decades; :mod:`repro.arch` adds two
of its successors — the reserved-slot DAMQ (arXiv 0910.1852) and the
crosspoint-queued switch (arXiv 1403.2098) — plus distributed
schedulers (arXiv 1112.4214 lineage).  This experiment benchmarks all
six buffer architectures head-to-head at a matched total buffer budget
under uniform and hot-spot traffic, and compares the scheduling
disciplines on the architectures that support them.

The headline is *where DAMQ's dynamic sharing loses*: under hot-spot
traffic a fully shared pool fills up with packets for the hot output,
so the cold outputs starve behind them.  The per-output reservation
(DAMQ-RSV), the static partitions (SAMQ/SAFC) and the dedicated
crosspoints (CQ) all contain the hot flow; plain DAMQ and FIFO do not.

``python -m repro.experiments.ext_arch --out benchmarks/BENCH_10.json``
writes the committed benchmark document; the results are deterministic,
so regenerating it is byte-identical for a given seed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.experiments.report import ExperimentResult
from repro.network.simulator import NetworkConfig
from repro.perf.parallel import parallel_simulate
from repro.switch.flow_control import Protocol
from repro.utils.tables import TextTable, format_value

__all__ = ["benchmark_document", "main", "run"]

#: All six architectures at a matched budget: the paper's four plus the
#: ``repro.arch`` zoo, each with its natural scheduler.
ARCH_KINDS = ("FIFO", "SAMQ", "SAFC", "DAMQ", "DAMQ-RSV", "CQ")

#: Scheduler driving each architecture in the head-to-head grid.  The
#: crosspoint-queued switch has no central arbiter; everything else runs
#: under the paper's smart arbiter for an apples-to-apples comparison.
GRID_SCHEDULERS = {"CQ": "lqf"}

#: Scheduler comparison rows: (buffer kind, scheduler kind).
SCHEDULER_PAIRS = (
    ("DAMQ-RSV", "smart"),
    ("DAMQ-RSV", "islip1"),
    ("DAMQ-RSV", "islip2"),
    ("DAMQ-RSV", "islip4"),
    ("CQ", "lqf"),
    ("CQ", "rr"),
)

#: Traffic patterns of the head-to-head grid.
TRAFFIC_KINDS = ("uniform", "hotspot")

#: Hot-spot intensity: strong enough that the hot output saturates and
#: the buffer architecture decides whether the cold outputs survive.
HOT_FRACTION = 0.2

#: Offered loads swept per traffic pattern.
LOADS = (0.3, 0.6, 0.9)
QUICK_LOADS = (0.9,)


def _base_config(seed: int) -> NetworkConfig:
    """The matched-budget switch every cell shares.

    Sixteen ports of 4×4 switches with eight slots per input buffer:
    every architecture gets the same total storage, and eight divides
    evenly into the four partitions/crosspoints SAMQ, SAFC and CQ need.
    """
    return NetworkConfig(
        num_ports=16,
        radix=4,
        slots_per_buffer=8,
        protocol=Protocol.DISCARDING,
        traffic_kind="uniform",
        hot_fraction=HOT_FRACTION,
        seed=seed,
    )


def run(
    quick: bool = False, seed: int = 1988, jobs: int | None = 1
) -> ExperimentResult:
    """Benchmark the architecture zoo; honours ``jobs`` for the grid."""
    result = ExperimentResult(
        experiment_id="ext-arch",
        title="Extension: architecture zoo — CQ, reserved-slot DAMQ, "
        "distributed schedulers",
        paper_reference="Descendant architectures "
        "(arXiv 0910.1852, 1403.2098, 1112.4214)",
    )
    loads = QUICK_LOADS if quick else LOADS
    warmup = 150 if quick else 300
    measure = 600 if quick else 1500
    base = _base_config(seed)

    grid = [
        (kind, traffic, load)
        for traffic in TRAFFIC_KINDS
        for kind in ARCH_KINDS
        for load in loads
    ]
    configs = [
        base.with_overrides(
            buffer_kind=kind,
            arbiter_kind=GRID_SCHEDULERS.get(kind, "smart"),
            traffic_kind=traffic,
            offered_load=load,
        )
        for kind, traffic, load in grid
    ]
    sched_grid = list(SCHEDULER_PAIRS)
    sched_configs = [
        base.with_overrides(
            buffer_kind=kind,
            arbiter_kind=scheduler,
            traffic_kind="uniform",
            offered_load=loads[-1],
        )
        for kind, scheduler in sched_grid
    ]
    results = parallel_simulate(
        configs + sched_configs, warmup, measure, jobs=jobs
    )
    cells = results[: len(grid)]
    sched_cells = results[len(grid) :]

    data: dict[tuple[str, str, float], dict[str, float]] = {}
    for (kind, traffic, load), cell in zip(grid, cells):
        data[(kind, traffic, load)] = {
            "delivered": cell.delivered_throughput,
            "latency": cell.average_latency,
            "discard_percent": cell.discard_percent,
        }
    result.data["grid"] = data

    for traffic in TRAFFIC_KINDS:
        title = (
            f"Delivered throughput, {traffic} traffic "
            f"(16 ports, 8 slots/buffer, discarding"
            + (f", {HOT_FRACTION:.0%} hot" if traffic == "hotspot" else "")
            + ")"
        )
        table = TextTable(
            title, ["Buffer"] + [f"load {load:g}" for load in loads]
        )
        for kind in ARCH_KINDS:
            table.add_row(
                [kind]
                + [
                    format_value(data[(kind, traffic, load)]["delivered"], 3)
                    for load in loads
                ]
            )
        result.tables.append(table)

    sched_data: dict[tuple[str, str], float] = {}
    sched_table = TextTable(
        f"Scheduler comparison, uniform traffic at load {loads[-1]:g}",
        ["Buffer", "Scheduler", "Delivered", "Latency"],
    )
    for (kind, scheduler), cell in zip(sched_grid, sched_cells):
        sched_data[(kind, scheduler)] = cell.delivered_throughput
        sched_table.add_row(
            [
                kind,
                scheduler,
                format_value(cell.delivered_throughput, 3),
                format_value(cell.average_latency, 2),
            ]
        )
    result.tables.append(sched_table)
    result.data["schedulers"] = sched_data

    load = loads[-1]
    damq = data[("DAMQ", "hotspot", load)]
    reserved = data[("DAMQ-RSV", "hotspot", load)]
    result.notes.append(
        f"hot-spot traffic at load {load:g}: plain DAMQ delivers "
        f"{damq['delivered']:.3f} while discarding "
        f"{damq['discard_percent']:.1f}% — its shared pool fills with "
        f"hot-output packets; the per-output reservation recovers "
        f"{reserved['delivered']:.3f} delivered at "
        f"{reserved['discard_percent']:.1f}% discards"
    )
    uniform_best = max(
        ARCH_KINDS, key=lambda kind: data[(kind, "uniform", load)]["delivered"]
    )
    result.notes.append(
        f"uniform traffic at load {load:g}: dynamic sharing still wins "
        f"({uniform_best} leads with "
        f"{data[(uniform_best, 'uniform', load)]['delivered']:.3f} delivered)"
    )
    return result


def benchmark_document(
    result: ExperimentResult, quick: bool, seed: int
) -> dict[str, Any]:
    """The JSON benchmark document committed as ``BENCH_10.json``.

    Pure reshaping of ``result.data`` into string-keyed JSON; every
    number is a deterministic function of the seed, so regeneration is
    byte-identical.
    """
    grid: dict[str, Any] = {}
    for (kind, traffic, load), cell in sorted(result.data["grid"].items()):
        row = grid.setdefault(traffic, {}).setdefault(kind, {})
        row[f"load{load:g}"] = {
            key: round(value, 6) for key, value in cell.items()
        }
    schedulers = {
        f"{kind}/{scheduler}": round(delivered, 6)
        for (kind, scheduler), delivered in sorted(
            result.data["schedulers"].items()
        )
    }
    return {
        "schema": 1,
        "kind": "arch-zoo",
        "mode": "quick" if quick else "full",
        "seed": seed,
        "num_ports": 16,
        "slots_per_buffer": 8,
        "protocol": "discarding",
        "hot_fraction": HOT_FRACTION,
        "grids": grid,
        "schedulers": schedulers,
    }


def main(argv: list[str] | None = None) -> int:
    """Write the benchmark document (and print the report)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.ext_arch",
        description="Benchmark the architecture zoo and write the "
        "deterministic BENCH document.",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the benchmark JSON here (e.g. benchmarks/BENCH_10.json)",
    )
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--seed", type=int, default=1988)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)
    result = run(quick=args.quick, seed=args.seed, jobs=args.jobs)
    print(result.render())
    if args.out is not None:
        document = benchmark_document(result, args.quick, args.seed)
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
