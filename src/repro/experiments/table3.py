"""Table 3 — discarding switches in the Omega network, uniform traffic.

Percentage of packets discarded at input throughputs of 0.25 and 0.50 and
in an over-capacity regime, for all four buffer architectures with four
slots per input buffer, under smart and (at 0.50) dumb arbitration.

The paper's "over capacity" column drives the network beyond every
architecture's saturation point; we use an offered load of 0.75 and report
both the discard percentage and the surviving output throughput, exactly
the two quantities the paper tabulates.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, sim_cycles
from repro.network import NetworkConfig
from repro.perf import parallel_simulate
from repro.switch.flow_control import Protocol
from repro.utils.tables import TextTable, format_value

__all__ = ["run", "OVER_CAPACITY_LOAD"]

_KIND_ORDER = ("FIFO", "SAMQ", "SAFC", "DAMQ")

#: Offered load used for the "over capacity" column.
OVER_CAPACITY_LOAD = 0.75

#: The table's four (column label, offered load, arbiter) cells per row.
_CELLS = (
    ("smart_25", 0.25, "smart"),
    ("smart_50", 0.50, "smart"),
    ("over", OVER_CAPACITY_LOAD, "smart"),
    ("dumb_50", 0.50, "dumb"),
)


def run(
    quick: bool = False, seed: int = 1988, jobs: int | None = 1
) -> ExperimentResult:
    """Regenerate Table 3."""
    warmup, measure = sim_cycles(quick)
    result = ExperimentResult(
        experiment_id="table3",
        title="Discarding switches: percentage of packets discarded "
        "(uniform traffic, four slots per buffer)",
        paper_reference="Table 3, Section 4.2",
    )
    table = TextTable(
        "Percent of packets discarded for given input throughput",
        [
            "Buffer",
            "smart @0.25",
            "smart @0.50",
            "over-cap %disc",
            "over-cap out-thruput",
            "dumb @0.50",
        ],
    )
    data: dict[str, dict[str, float]] = {}
    base = NetworkConfig(
        slots_per_buffer=4,
        protocol=Protocol.DISCARDING,
        traffic_kind="uniform",
        seed=seed,
    )
    # The whole table is one independent grid: fan every cell at once.
    grid = [(kind, cell) for kind in _KIND_ORDER for cell in _CELLS]
    sims = parallel_simulate(
        [
            base.with_overrides(
                buffer_kind=kind, offered_load=load, arbiter_kind=arbiter
            )
            for kind, (_label, load, arbiter) in grid
        ],
        warmup,
        measure,
        jobs=jobs,
    )
    for (kind, (label, _load, _arbiter)), sim in zip(grid, sims):
        row = data.setdefault(kind, {})
        row[f"{label}_discard"] = sim.discard_percent
        row[f"{label}_delivered"] = sim.delivered_throughput
    for kind in _KIND_ORDER:
        row = data[kind]
        table.add_row(
            [
                kind,
                format_value(row["smart_25_discard"], 2),
                format_value(row["smart_50_discard"], 2),
                format_value(row["over_discard"], 2),
                format_value(row["over_delivered"], 2),
                format_value(row["dumb_50_discard"], 2),
            ]
        )
    result.tables.append(table)
    result.data["rows"] = data
    result.notes.append(
        "As in the paper, dumb and smart arbitration discard nearly the "
        "same fraction at 0.50, and the DAMQ both discards least and "
        "delivers the highest over-capacity output throughput."
    )
    return result
