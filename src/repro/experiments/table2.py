"""Table 2 — probability of discarding, Markov analysis of 2×2 switches.

Exact steady-state analysis of the four buffer architectures in a 2×2
discarding switch under the long-clock assumption, across the paper's
traffic grid (25% … 99% of link capacity) and buffer sizes (2-6 slots;
even sizes only for the statically partitioned buffers).
"""

from __future__ import annotations

from repro.markov import (
    PAPER_BUFFER_SIZES,
    PAPER_TRAFFIC_GRID,
    discard_table,
)
from repro.experiments.report import ExperimentResult
from repro.utils.tables import TextTable, format_value

__all__ = ["run"]

#: Row order of the paper's table.
_KIND_ORDER = ("FIFO", "DAMQ", "SAMQ", "SAFC")

#: Sizes used for the quick (benchmark) variant: skip the largest FIFO
#: state spaces, keep every architecture represented.
_QUICK_SIZES = {
    "FIFO": (2, 3),
    "DAMQ": (2, 4),
    "SAMQ": (2, 4),
    "SAFC": (2, 4),
}


def run(
    quick: bool = False, seed: int = 1988, jobs: int | None = 1
) -> ExperimentResult:
    """Regenerate Table 2 (all four architecture blocks)."""
    # ``jobs`` accepted for a uniform runner interface; this experiment
    # has no simulation grid to fan out.
    del jobs
    result = ExperimentResult(
        experiment_id="table2",
        title="Probability for discarding — Markov analysis (2x2 switch)",
        paper_reference="Table 2, Section 4.1",
    )
    columns = ["Switch", "Slots/port"] + [
        f"{rate:.0%}" for rate in PAPER_TRAFFIC_GRID
    ]
    table = TextTable("Discard probability per arriving packet", columns)
    data: dict[tuple[str, int], tuple[float, ...]] = {}
    for kind in _KIND_ORDER:
        sizes = _QUICK_SIZES[kind] if quick else PAPER_BUFFER_SIZES[kind]
        block = discard_table(kind, sizes=sizes)
        for slots, probabilities in sorted(block.rows.items()):
            data[(kind, slots)] = probabilities
            table.add_row(
                [kind, slots]
                + [
                    format_value(prob, decimals=3, zero_plus=True)
                    for prob in probabilities
                ]
            )
    result.tables.append(table)
    result.data["discard"] = data
    result.notes.append(
        "Modeling choices where the paper is silent: transmissions precede "
        "arrivals within a long-clock cycle, and arbitration ties are "
        "split uniformly (see repro.markov.models)."
    )
    return result
