"""Extension — switch radix ablation for a fixed 64-port network.

The paper builds its 64×64 network from 4×4 switches; the introduction
notes real switches range from 2×2 to ~10×10.  This experiment holds the
network size, total buffering per input and workload fixed and varies the
switch radix: 2×2 (six stages), 4×4 (three stages) and 8×8 (two stages),
asking how the radix choice interacts with each buffer architecture.

Expected physics: higher radix means fewer hops (lower base latency) and
fewer head-of-line victims per FIFO queue... but also more output ports
sharing one DAMQ pool, and for the partitioned designs ever-thinner
partitions.  The DAMQ handles the radix sweep most gracefully — its
advantage is precisely that storage follows demand.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.experiments.report import ExperimentResult, sim_cycles
from repro.network import NetworkConfig, measure_saturation_grid
from repro.switch.flow_control import Protocol
from repro.utils.tables import TextTable, format_value

__all__ = ["run", "RADICES"]

#: Switch arities swept (each must divide 64 into a power).
RADICES = (2, 4, 8)

_KIND_ORDER = ("FIFO", "SAMQ", "SAFC", "DAMQ")


def run(
    quick: bool = False, seed: int = 1988, jobs: int | None = 1
) -> ExperimentResult:
    """Saturation throughput for each (radix, buffer architecture) pair.

    Buffer capacity per input port is ``2 * radix`` slots so the static
    designs keep two slots per partition at every radix (and every design
    gets equal storage at a given radix).
    """
    warmup, measure = sim_cycles(quick)
    radices = (2, 4) if quick else RADICES
    result = ExperimentResult(
        experiment_id="ext-radix",
        title="Extension: switch radix ablation (64 ports, uniform traffic)",
        paper_reference="Section 1's 2 <= n <= 10 switch-size range",
    )
    table = TextTable(
        "Saturation throughput by switch radix "
        "(buffer = 2*radix slots per input)",
        ["Buffer"] + [f"{radix}x{radix} ({_stages(radix)} stages)" for radix in radices],
    )
    base = NetworkConfig(
        num_ports=64,
        protocol=Protocol.BLOCKING,
        arbiter_kind="smart",
        traffic_kind="uniform",
        seed=seed,
    )
    data: dict[tuple[str, int], float] = {}
    grid = [(kind, radix) for kind in _KIND_ORDER for radix in radices]
    saturations = measure_saturation_grid(
        [
            base.with_overrides(
                buffer_kind=kind, radix=radix, slots_per_buffer=2 * radix
            )
            for kind, radix in grid
        ],
        warmup,
        measure,
        jobs=jobs,
    )
    for (kind, radix), saturation in zip(grid, saturations):
        data[(kind, radix)] = saturation.saturation_throughput
    for kind in _KIND_ORDER:
        table.add_row(
            [kind]
            + [format_value(data[(kind, radix)], 3) for radix in radices]
        )
    result.tables.append(table)
    result.data["saturation"] = data
    for radix in radices:
        best = max(_KIND_ORDER, key=lambda kind: data[(kind, radix)])
        result.notes.append(
            f"radix {radix}: best architecture is {best} "
            f"({data[(best, radix)]:.3f})"
        )
    return result


def _stages(radix: int) -> int:
    stages = 0
    size = 1
    while size < 64:
        size *= radix
        stages += 1
    if size != 64:
        raise ConfigurationError(f"radix {radix} does not divide 64 ports")
    return stages
