"""Command-line entry point: ``python -m repro.experiments``.

Examples
--------
Run everything at full fidelity (slow, tens of minutes)::

    python -m repro.experiments

Run selected experiments quickly::

    python -m repro.experiments table2 table4 --quick
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.cache.store import DEFAULT_CACHE_DIR, ResultCache
from repro.core.registry import buffer_kinds
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.switch.scheduler import scheduler_kinds


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, run the requested experiments, print reports."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Tamir & Frazier "
        "(ISCA 1988).",
        epilog=f"registered buffer architectures: "
        f"{', '.join(buffer_kinds())}; "
        f"registered schedulers: {', '.join(scheduler_kinds())}",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (default: all of {sorted(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shortened simulation windows (noisier, much faster)",
    )
    parser.add_argument(
        "--seed", type=int, default=1988, help="root random seed"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for each experiment's simulation grid "
        "(0 = one per CPU; results are identical for any value)",
    )
    parser.add_argument(
        "--backend",
        choices=["reference", "numpy"],
        default=None,
        help="force the simulation backend for every grid (results are "
        "byte-identical; numpy fuses each grid into vectorized batch "
        "kernels).  Unset, the REPRO_BACKEND environment variable "
        "applies as a soft preference",
    )
    parser.add_argument(
        "--csv-dir",
        metavar="DIR",
        default=None,
        help="also write each experiment's tables as CSV files into DIR",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="memoize per-config simulations in a content-addressed store "
        "(--no-cache disables); a warm re-run performs zero simulations "
        "and prints byte-identical reports",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help=f"cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="write a resumable checkpoint every N simulated cycles so an "
        "interrupted simulation continues bit-identically "
        "(checkpoints live under CACHE_DIR/checkpoints)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="run every simulation with full event tracing and export VCD "
        "waveforms, Chrome traces and metrics into TRACE_DIR "
        "(results stay bit-identical to an untraced run)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="like --trace but counters only: no event ring, no waveforms, "
        "just the merged metrics documents (lower overhead)",
    )
    parser.add_argument(
        "--trace-dir",
        metavar="DIR",
        default="telemetry",
        help="export directory for --trace/--metrics artifacts "
        "(default: ./telemetry)",
    )
    args = parser.parse_args(argv)
    if args.trace or args.metrics:
        # Environment, not a parameter, so the parallel workers of
        # parallel_simulate inherit it exactly like REPRO_SANITIZE.
        env_name = "REPRO_TRACE" if args.trace else "REPRO_METRICS"
        os.environ[env_name] = args.trace_dir
    cache = ResultCache(args.cache_dir) if args.cache else None
    checkpoint_dir = (
        Path(args.cache_dir) / "checkpoints"
        if args.checkpoint_every is not None
        else None
    )
    requested = args.experiments or list(EXPERIMENTS)
    for experiment_id in requested:
        started = time.perf_counter()  # repro: noqa=REP007 - CLI timing
        result = run_experiment(
            experiment_id,
            quick=args.quick,
            seed=args.seed,
            jobs=args.jobs,
            cache=cache,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            backend=args.backend,
        )
        elapsed = time.perf_counter() - started  # repro: noqa=REP007 - CLI timing
        print(result.render())
        if args.csv_dir is not None:
            from repro.experiments.export import export_result

            for path in export_result(result, args.csv_dir):
                print(f"wrote {path}")
        print(f"\n({experiment_id} completed in {elapsed:.1f}s)\n")
        print("=" * 72)
    if args.trace or args.metrics:
        from repro.telemetry.report import (
            merge_metrics_documents,
            metrics_files,
            render_report,
        )

        paths = metrics_files(args.trace_dir)
        if paths:
            registry, info = merge_metrics_documents(paths)
            print(render_report(registry, info))
            print(f"telemetry artifacts in {args.trace_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
