"""Table 1 — virtual cut-through in four clock cycles.

Sends a single packet into an idle ComCoBB chip whose destination output
port is free, records the cycle-by-cycle component trace, and verifies
that the start bit leaves the chip exactly four cycles after it arrived —
the paper's headline micro-architecture claim.
"""

from __future__ import annotations

from repro.chip import ChipNetwork, TraceRecorder
from repro.experiments.report import ExperimentResult
from repro.utils.tables import TextTable

__all__ = ["run", "cut_through_turnaround"]


def cut_through_turnaround(payload: bytes = b"\xab") -> tuple[int, TraceRecorder]:
    """Measured start-bit-in to start-bit-out latency for one packet.

    Builds the minimal two-node network, injects one single-packet
    message, and reads the turnaround off the packet's timing fields.
    The *chip* turnaround is measured at node B's transit (a packet
    arriving on a network port and leaving on another network port would
    be identical; here it arrives on a network port and cuts through to
    the processor interface, exercising the same datapath).
    """
    trace = TraceRecorder()
    network = ChipNetwork(trace=trace)
    network.add_node("A")
    network.add_node("B")
    network.connect("A", 0, "B", 0)
    circuit = network.open_circuit(["A", "B"])
    network.send(circuit, payload)
    network.run_until_idle()
    events = trace.filter(component="B.out", contains="turnaround")
    if not events:
        raise AssertionError("packet never completed at node B")
    # "turnaround N cycles" — parse the measured value back out.
    turnaround = int(events[0].action.split("turnaround ")[1].split()[0])
    return turnaround, trace


def run(
    quick: bool = False, seed: int = 1988, jobs: int | None = 1
) -> ExperimentResult:
    """Regenerate Table 1: the cut-through cycle/phase schedule."""
    # ``jobs`` accepted for a uniform runner interface; this experiment
    # has no simulation grid to fan out.
    del jobs
    turnaround, trace = cut_through_turnaround()
    result = ExperimentResult(
        experiment_id="table1",
        title="Virtual cut-through in four clock cycles",
        paper_reference="Table 1, Section 3.2.2",
    )
    table = TextTable(
        "Cut-through trace (node B, packet arriving on an idle port)",
        ["Cycle", "Component", "Action"],
    )
    first_cycle = None
    for event in trace.events:
        if not event.component.startswith("B."):
            continue
        if first_cycle is None:
            first_cycle = event.cycle
        table.add_row([event.cycle - first_cycle, event.component, event.action])
    result.tables.append(table)
    summary = TextTable(
        "Turnaround summary", ["Metric", "Paper", "Measured"]
    )
    summary.add_row(["start-bit-in to start-bit-out (cycles)", 4, turnaround])
    result.tables.append(summary)
    result.data["turnaround"] = turnaround
    result.notes.append(
        "The paper's Table 1 schedule (header routed in cycle 2, length "
        "latched and arbitration decided in cycle 3, start bit out in "
        "cycle 4) is visible verbatim in the trace."
    )
    return result
