"""Figure 1 — the four switch organizations, structurally.

Figure 1 of the paper is a block diagram; its reproducible content is the
*structure* of each organization: how many queues each input port exposes,
how the storage is partitioned, and what connection fabric the buffers
need.  This experiment instantiates each architecture in a 4×4 switch and
derives those facts from the live objects, plus an ASCII rendition of the
block diagrams.
"""

from __future__ import annotations

from repro.core import PAPER_ORDER, make_buffer
from repro.experiments.report import ExperimentResult
from repro.utils.tables import TextTable

__all__ = ["run", "structural_facts"]

_DIAGRAMS = {
    "FIFO": """\
in0 ->[========]--+
in1 ->[========]--+--[ 4x4 crossbar ]--> out0..3
in2 ->[========]--+
in3 ->[========]--+       (one FIFO queue per input)""",
    "SAFC": """\
in0 ->[==|==|==|==]--4 lines--+
in1 ->[==|==|==|==]--4 lines--+--[ four 4x1 switches ]--> out0..3
in2 ->[==|==|==|==]--4 lines--+
in3 ->[==|==|==|==]--4 lines--+  (static queues, fully connected)""",
    "SAMQ": """\
in0 ->[==|==|==|==]--+
in1 ->[==|==|==|==]--+--[ 4x4 crossbar ]--> out0..3
in2 ->[==|==|==|==]--+
in3 ->[==|==|==|==]--+     (static queues, single read port)""",
    "DAMQ": """\
in0 ->[linked lists]--+
in1 ->[linked lists]--+--[ 4x4 crossbar ]--> out0..3
in2 ->[linked lists]--+
in3 ->[linked lists]--+  (dynamic queues share all slots)""",
}


def structural_facts(kind: str, capacity: int = 4, ports: int = 4) -> dict:
    """Structural properties of one architecture, from a live instance.

    Partitioning is determined empirically: fill one destination's queue
    until it rejects, then check whether another destination would still
    be accepted (true only for the statically partitioned designs).
    """
    from repro.core import PacketFactory

    buffer = make_buffer(kind, capacity, ports)
    factory = PacketFactory()
    destination = 0
    while buffer.can_accept(destination):
        buffer.push(factory.create(0, destination), destination)
    accepts_other = buffer.can_accept((destination + 1) % ports)
    return {
        "kind": buffer.kind,
        "queues_per_input": ports if buffer.kind != "FIFO" else 1,
        "reads_per_cycle": buffer.max_reads_per_cycle,
        "statically_partitioned": accepts_other,
        "slots_usable_by_one_destination": buffer.occupancy,
        "fabric": (
            f"{ports} {ports}x1 switches"
            if buffer.max_reads_per_cycle > 1
            else f"{ports}x{ports} crossbar"
        ),
    }


def run(
    quick: bool = False, seed: int = 1988, jobs: int | None = 1
) -> ExperimentResult:
    """Regenerate Figure 1 as diagrams plus a structural comparison."""
    # ``jobs`` accepted for a uniform runner interface; this experiment
    # has no simulation grid to fan out.
    del jobs
    result = ExperimentResult(
        experiment_id="figure1",
        title="The four buffer organizations",
        paper_reference="Figure 1, Section 2",
    )
    table = TextTable(
        "Structural comparison (4x4 switch, 4 slots per input)",
        [
            "Buffer",
            "Queues/input",
            "Reads/cycle",
            "Fabric",
            "Slots one destination can use",
        ],
    )
    facts = {}
    for kind in PAPER_ORDER:
        info = structural_facts(kind)
        facts[kind] = info
        table.add_row(
            [
                info["kind"],
                info["queues_per_input"],
                info["reads_per_cycle"],
                info["fabric"],
                info["slots_usable_by_one_destination"],
            ]
        )
    result.tables.append(table)
    result.data["facts"] = facts
    for kind in PAPER_ORDER:
        result.notes.append(f"{kind}:\n{_DIAGRAMS[kind]}")
    return result
