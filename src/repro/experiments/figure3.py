"""Figure 3 — latency vs throughput for FIFO and DAMQ buffers, four slots.

Sweeps the offered load, measuring delivered throughput and mean latency
at each point, reproducing the figure's signature: near-constant latency
up to saturation, then an almost vertical wall — with the DAMQ's wall far
to the right of the FIFO's.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, sim_cycles
from repro.network import NetworkConfig, latency_throughput_curve
from repro.switch.flow_control import Protocol
from repro.utils.tables import TextTable, format_value

__all__ = ["run", "SWEEP_LOADS", "ascii_plot"]

#: Offered-load sweep of the full experiment.
SWEEP_LOADS = (0.1, 0.2, 0.3, 0.4, 0.45, 0.5, 0.55, 0.6, 0.65, 0.7, 0.8, 1.0)

#: Shorter sweep for the quick/benchmark run.
QUICK_LOADS = (0.2, 0.4, 0.5, 0.7, 1.0)

_KINDS = ("FIFO", "DAMQ")


def ascii_plot(
    curves: dict[str, list], width: int = 64, height: int = 18
) -> str:
    """Scatter plot of latency (y) vs delivered throughput (x) in ASCII.

    One mark per curve point; the first character of the buffer name is
    the mark.  Rough, but it makes the knee obvious in a terminal.
    """
    points = [
        (point.delivered_throughput, point.average_latency, kind[0])
        for kind, curve in curves.items()
        for point in curve
    ]
    if not points:
        return "(no data)"
    max_latency = max(latency for _t, latency, _m in points)
    grid = [[" "] * width for _ in range(height)]
    for throughput, latency, mark in points:
        column = min(width - 1, int(throughput * (width - 1)))
        row = min(height - 1, int(latency / max_latency * (height - 1)))
        grid[height - 1 - row][column] = mark
    lines = [f"latency (max {max_latency:.0f} cycles)"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width + "> delivered throughput (0..1)")
    return "\n".join(lines)


def run(
    quick: bool = False, seed: int = 1988, jobs: int | None = 1
) -> ExperimentResult:
    """Regenerate Figure 3 as a data table plus an ASCII rendering."""
    warmup, measure = sim_cycles(quick)
    loads = list(QUICK_LOADS if quick else SWEEP_LOADS)
    result = ExperimentResult(
        experiment_id="figure3",
        title="FIFO vs DAMQ latency/throughput curves "
        "(four slots, uniform traffic)",
        paper_reference="Figure 3, Section 4.2.1",
    )
    base = NetworkConfig(
        slots_per_buffer=4,
        protocol=Protocol.BLOCKING,
        arbiter_kind="smart",
        traffic_kind="uniform",
        seed=seed,
    )
    curves = {}
    table = TextTable(
        "Curve points",
        ["Buffer", "offered", "delivered", "latency (cycles)", "±95%"],
    )
    for kind in _KINDS:
        curve = latency_throughput_curve(
            base.with_overrides(buffer_kind=kind), loads, warmup, measure,
            jobs=jobs,
        )
        curves[kind] = curve
        for point in curve:
            table.add_row(
                [
                    kind,
                    format_value(point.offered_load, 2),
                    format_value(point.delivered_throughput, 3),
                    format_value(point.average_latency, 2),
                    format_value(point.latency_half_width, 2),
                ]
            )
    result.tables.append(table)
    result.data["curves"] = curves
    result.notes.append(ascii_plot(curves))
    fifo_max = max(p.delivered_throughput for p in curves["FIFO"])
    damq_max = max(p.delivered_throughput for p in curves["DAMQ"])
    result.notes.append(
        f"FIFO's curve goes vertical near {fifo_max:.2f}; DAMQ's near "
        f"{damq_max:.2f}."
    )
    return result
