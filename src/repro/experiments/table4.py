"""Table 4 — average latency vs throughput, four slots per buffer.

Blocking Omega network, uniform traffic, smart arbitration.  For each
buffer architecture: mean packet latency (clock cycles) at throughputs
0.25, 0.30, 0.40 and 0.50, the latency at saturation, and the saturation
throughput — the table behind the paper's "forty percent higher maximum
throughput" headline.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, sim_cycles
from repro.network import NetworkConfig, measure_saturation_grid
from repro.perf import parallel_simulate
from repro.switch.flow_control import Protocol
from repro.utils.tables import TextTable, format_value

__all__ = ["run", "PAPER_LOADS"]

_KIND_ORDER = ("FIFO", "DAMQ", "SAFC", "SAMQ")

#: Sub-saturation throughput columns of the paper's table.
PAPER_LOADS = (0.25, 0.30, 0.40, 0.50)


def run(
    quick: bool = False, seed: int = 1988, jobs: int | None = 1
) -> ExperimentResult:
    """Regenerate Table 4."""
    warmup, measure = sim_cycles(quick)
    loads = PAPER_LOADS[:2] + (PAPER_LOADS[-1],) if quick else PAPER_LOADS
    result = ExperimentResult(
        experiment_id="table4",
        title="Average latencies for given throughput "
        "(four slots per buffer, uniform traffic, blocking)",
        paper_reference="Table 4, Section 4.2.1",
    )
    columns = (
        ["Buffer"]
        + [f"lat @{load:.2f}" for load in loads]
        + ["saturated lat", "saturation throughput"]
    )
    table = TextTable("Average latency (clock cycles)", columns)
    base = NetworkConfig(
        slots_per_buffer=4,
        protocol=Protocol.BLOCKING,
        arbiter_kind="smart",
        traffic_kind="uniform",
        seed=seed,
    )
    data: dict[str, dict] = {}
    # Sub-saturation grid (kinds x loads) and the saturation runs are all
    # independent; fan each batch over the process pool.
    grid = [(kind, load) for kind in _KIND_ORDER for load in loads]
    sims = parallel_simulate(
        [
            base.with_overrides(buffer_kind=kind, offered_load=load)
            for kind, load in grid
        ],
        warmup,
        measure,
        jobs=jobs,
    )
    latencies_by_kind: dict[str, dict] = {kind: {} for kind in _KIND_ORDER}
    for (kind, load), sim in zip(grid, sims):
        latencies_by_kind[kind][load] = sim.average_latency
    saturations = measure_saturation_grid(
        [base.with_overrides(buffer_kind=kind) for kind in _KIND_ORDER],
        warmup,
        measure,
        jobs=jobs,
    )
    for kind, saturation in zip(_KIND_ORDER, saturations):
        data[kind] = {
            "latencies": latencies_by_kind[kind],
            "saturation_throughput": saturation.saturation_throughput,
            "saturated_latency": saturation.saturated_latency,
        }
        table.add_row(
            [kind]
            + [format_value(latencies_by_kind[kind][load], 2) for load in loads]
            + [
                format_value(saturation.saturated_latency, 2),
                format_value(saturation.saturation_throughput, 2),
            ]
        )
    result.tables.append(table)
    result.data["rows"] = data
    fifo = data["FIFO"]["saturation_throughput"]
    damq = data["DAMQ"]["saturation_throughput"]
    result.data["damq_over_fifo"] = damq / fifo
    result.notes.append(
        f"DAMQ saturates at {damq:.2f} vs FIFO's {fifo:.2f} — "
        f"{100 * (damq / fifo - 1):.0f}% higher (paper: ~40%)."
    )
    result.notes.append(
        "Below 0.40 the four architectures are nearly indistinguishable, "
        "as the paper observes."
    )
    return result
