"""Table 5 — average latency varying the number of slots per buffer.

FIFO and DAMQ with 3, 4 and 8 slots per input buffer: latency at 25% and
50% throughput, saturated latency and saturation throughput.  The paper's
point: extra slots move FIFO's saturation only modestly while DAMQ with
*three* slots already saturates above FIFO with eight — buffer control
beats buffer capacity.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, sim_cycles
from repro.network import NetworkConfig, measure_saturation_grid
from repro.perf import parallel_simulate
from repro.switch.flow_control import Protocol
from repro.utils.tables import TextTable, format_value

__all__ = ["run", "PAPER_SLOT_COUNTS"]

#: Buffer depths compared in the paper's table.
PAPER_SLOT_COUNTS = (3, 4, 8)

_KIND_ORDER = ("FIFO", "DAMQ")


def run(
    quick: bool = False, seed: int = 1988, jobs: int | None = 1
) -> ExperimentResult:
    """Regenerate Table 5."""
    warmup, measure = sim_cycles(quick)
    slot_counts = (3, 8) if quick else PAPER_SLOT_COUNTS
    result = ExperimentResult(
        experiment_id="table5",
        title="Average latencies varying the number of slots per buffer",
        paper_reference="Table 5, Section 4.2.1",
    )
    table = TextTable(
        "Latency (clock cycles) and saturation point by buffer depth",
        [
            "Buffer",
            "Slots",
            "lat @0.25",
            "lat @0.50",
            "saturated lat",
            "saturation throughput",
        ],
    )
    base = NetworkConfig(
        protocol=Protocol.BLOCKING,
        arbiter_kind="smart",
        traffic_kind="uniform",
        seed=seed,
    )
    data: dict[tuple[str, int], dict] = {}
    cells = [(kind, slots) for kind in _KIND_ORDER for slots in slot_counts]
    configs = [
        base.with_overrides(buffer_kind=kind, slots_per_buffer=slots)
        for kind, slots in cells
    ]
    sims_25 = parallel_simulate(
        [config.with_overrides(offered_load=0.25) for config in configs],
        warmup, measure, jobs=jobs,
    )
    sims_50 = parallel_simulate(
        [config.with_overrides(offered_load=0.50) for config in configs],
        warmup, measure, jobs=jobs,
    )
    saturations = measure_saturation_grid(configs, warmup, measure, jobs=jobs)
    for (kind, slots), sim_25, sim_50, saturation in zip(
        cells, sims_25, sims_50, saturations
    ):
        data[(kind, slots)] = {
            "lat_25": sim_25.average_latency,
            "lat_50": sim_50.average_latency,
            "saturated_latency": saturation.saturated_latency,
            "saturation_throughput": saturation.saturation_throughput,
        }
        table.add_row(
            [
                kind,
                slots,
                format_value(sim_25.average_latency, 1),
                format_value(sim_50.average_latency, 1),
                format_value(saturation.saturated_latency, 1),
                format_value(saturation.saturation_throughput, 2),
            ]
        )
    result.tables.append(table)
    result.data["rows"] = data
    smallest_damq = data[("DAMQ", slot_counts[0])]["saturation_throughput"]
    largest_fifo = data[("FIFO", slot_counts[-1])]["saturation_throughput"]
    result.notes.append(
        f"DAMQ with {slot_counts[0]} slots saturates at {smallest_damq:.2f}, "
        f"above FIFO with {slot_counts[-1]} slots ({largest_fifo:.2f}) — "
        "the paper's area-for-control argument."
    )
    return result
