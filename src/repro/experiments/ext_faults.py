"""Extension — fault tolerance and graceful degradation.

The paper designs for performance on the assumption of reliable links and
storage; this extension asks what each layer of the reproduction does when
that assumption fails.  Two campaigns (see :mod:`repro.faults.campaign`):

1. **End-to-end recovery on the chip network** — a 16-node mesh of
   ComCoBB chips with seeded bit flips on every wire and one hard-failed
   slot retired from every buffer.  The link checksum detects corruption,
   degrade-mode receive FSMs contain it, and host-level
   ack/timeout/retransmission recovers it.  The headline: delivery stays
   at ~100% while a substantial fraction of raw packets is destroyed.

2. **Degraded-capacity throughput on the Omega network** — the paper's
   four buffer architectures plus the ``repro.arch`` zoo (reserved-slot
   DAMQ, crosspoint-queued) running with a retired slot per buffer
   under increasing packet loss.  The DAMQ's dynamic allocation absorbs
   the lost capacity wherever demand is; the static partitions of
   SAMQ/SAFC (and CQ's crosspoints) lose a whole partition slot, and
   the reserved-slot DAMQ gives up shared-pool capacity while keeping
   every reservation intact.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.faults.campaign import (
    EXTENDED_BUFFER_KINDS,
    ChipCampaignResult,
    run_buffer_sweep,
    run_chip_campaign,
)
from repro.perf.parallel import parallel_map
from repro.utils.tables import TextTable, format_value

__all__ = ["run"]

#: Link-loss probabilities swept in the buffer degradation campaign.
LOSS_RATES = (0.0, 1e-3, 1e-2)


def _campaign_task(
    task: tuple[int, float, int, int, int]
) -> ChipCampaignResult:
    """Cacheable unit of work: one closed-loop chip fault campaign."""
    nodes, bit_flip_rate, retired, messages_per_flow, seed = task
    return run_chip_campaign(
        nodes=nodes,
        bit_flip_rate=bit_flip_rate,
        retired_slots_per_buffer=retired,
        messages_per_flow=messages_per_flow,
        seed=seed,
    )


def run(
    quick: bool = False, seed: int = 1988, jobs: int | None = 1
) -> ExperimentResult:
    """Run both fault campaigns and tabulate the results.

    The chip campaign is one closed-loop run (inherently serial); the
    buffer degradation sweep is an independent grid and honours ``jobs``.
    """
    result = ExperimentResult(
        experiment_id="ext-faults",
        title="Extension: fault injection, graceful degradation, recovery",
        paper_reference="Robustness extension (no counterpart in the paper)",
    )

    # One closed-loop run (inherently serial), routed through the mapper
    # purely for its memoization: under --cache a warm re-run serves the
    # campaign's counters from the store instead of re-simulating.
    tasks = [(16, 1e-3, 1, 1 if quick else 2, seed)]
    campaign = parallel_map(
        _campaign_task, tasks, jobs=1, codec="chip-campaign", payloads=tasks
    )[0]
    chip_table = TextTable(
        "End-to-end recovery, 16-node mesh, bit flip rate 1e-3, "
        "1 retired slot per buffer",
        ["Metric", "Value"],
    )
    chip_table.add_row(["messages sent", str(campaign.messages_sent)])
    chip_table.add_row(
        ["messages delivered", str(campaign.messages_delivered)]
    )
    chip_table.add_row(
        ["delivery rate", format_value(campaign.delivery_rate, 4)]
    )
    chip_table.add_row(["retransmissions", str(campaign.retransmissions)])
    chip_table.add_row(["bit flips injected", str(campaign.flips_injected)])
    chip_table.add_row(
        [
            "faults detected",
            str(sum(campaign.fault_counters.values())),
        ]
    )
    chip_table.add_row(["cycles", str(campaign.cycles)])
    result.tables.append(chip_table)
    result.data["chip_campaign"] = {
        "delivery_rate": campaign.delivery_rate,
        "messages_sent": campaign.messages_sent,
        "messages_delivered": campaign.messages_delivered,
        "retransmissions": campaign.retransmissions,
        "flips_injected": campaign.flips_injected,
        "fault_counters": campaign.fault_counters,
    }
    result.notes.append(campaign.describe())

    cells = run_buffer_sweep(
        buffer_kinds=EXTENDED_BUFFER_KINDS,
        loss_rates=LOSS_RATES,
        retired_slots_per_buffer=1,
        seed=seed,
        warmup_cycles=100 if quick else 200,
        measure_cycles=400 if quick else 1000,
        jobs=jobs,
    )
    sweep_table = TextTable(
        "Delivered throughput at reduced capacity "
        "(16 ports, 8-slot buffers, 1 slot retired per buffer)",
        ["Buffer"] + [f"loss {rate:g}" for rate in LOSS_RATES],
    )
    by_kind: dict[str, list] = {}
    for cell in cells:
        by_kind.setdefault(cell.buffer_kind, []).append(cell)
    data: dict[tuple[str, float], float] = {}
    for kind, kind_cells in by_kind.items():
        row = [kind]
        for cell in kind_cells:
            data[(kind, cell.packet_loss_rate)] = cell.delivered_throughput
            row.append(format_value(cell.delivered_throughput, 3))
        sweep_table.add_row(row)
    result.tables.append(sweep_table)
    result.data["buffer_sweep"] = data

    best = max(by_kind, key=lambda kind: data[(kind, LOSS_RATES[-1])])
    result.notes.append(
        f"at loss rate {LOSS_RATES[-1]:g} the best degraded architecture "
        f"is {best} ({data[(best, LOSS_RATES[-1])]:.3f} delivered)"
    )
    return result
