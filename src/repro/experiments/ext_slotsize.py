"""Extension — the slot-size tradeoff of Section 3.2.3, quantified.

The paper discusses why eight-byte slots were chosen: smaller slots
multiply the per-slot registers and the pointer work, larger slots strand
storage to internal fragmentation.  This experiment produces the tradeoff
table from the analytic model in :mod:`repro.chip.area` and then verifies
its fragmentation column against the byte-level chip simulation (counting
actually-stranded bytes while packets of mixed sizes stream through).
"""

from __future__ import annotations

from repro.chip import ChipNetwork
from repro.chip.area import slot_size_sweep
from repro.experiments.report import ExperimentResult
from repro.perf import parallel_map
from repro.utils.rng import RandomStream
from repro.utils.tables import TextTable, format_value

__all__ = ["run", "measured_fragmentation"]

#: Candidate slot sizes, as weighed in Section 3.2.3.
SLOT_SIZES = (4, 8, 16, 32)

#: Data-RAM budget per input port (the ComCoBB's 96 static cells).
BUDGET_BYTES = 96


def measured_fragmentation(
    slot_bytes: int, messages: int = 40, seed: int = 5
) -> float:
    """Fraction of occupied slot bytes stranded, measured on the chip model.

    Streams messages of random sizes through one link and samples, at
    every cycle, how many bytes of the receiving buffer's *occupied* slots
    hold no data.
    """
    num_slots = BUDGET_BYTES // slot_bytes
    network = ChipNetwork(num_slots=num_slots, slot_bytes=slot_bytes)
    network.add_node("tx")
    network.add_node("rx")
    network.connect("tx", 0, "rx", 0)
    circuit = network.open_circuit(["tx", "rx"])
    rng = RandomStream(seed, "slotsize")
    for _ in range(messages):
        network.send(circuit, bytes(rng.randint(0, 256) for _ in range(rng.randint(1, 100))))
    occupied_samples = 0
    wasted_samples = 0
    buffer = network.nodes["rx"].chip.buffers[0]
    while network.busy:
        network.tick()
        for queue in buffer.queues:
            for packet in queue:
                if not packet.length_known or not packet.fully_written:
                    continue
                slots_held = len(packet.slots) - packet.slots_released
                if slots_held <= 0:
                    continue
                occupied_samples += slots_held * slot_bytes
                wasted_samples += (
                    len(packet.slots) * slot_bytes - packet.length
                )
    if occupied_samples == 0:
        return 0.0
    return wasted_samples / occupied_samples


def _fragmentation_task(task: tuple) -> float:
    """Pool worker: measured fragmentation at one slot size."""
    slot_bytes, seed = task
    return measured_fragmentation(slot_bytes, seed=seed)


def run(
    quick: bool = False, seed: int = 1988, jobs: int | None = 1
) -> ExperimentResult:
    """Regenerate the slot-size tradeoff discussion as a table."""
    result = ExperimentResult(
        experiment_id="ext-slotsize",
        title="Extension: the slot-size tradeoff (96-byte budget per port)",
        paper_reference="Section 3.2.3 (Buffer Implementation)",
    )
    table = TextTable(
        "Analytic tradeoff, uniform packet lengths 1-32 bytes",
        [
            "Slot bytes",
            "Slots",
            "Register bits/byte",
            "Fragmentation",
            "Ptr ops/packet",
            "Packets capacity",
        ],
    )
    estimates = slot_size_sweep(SLOT_SIZES, BUDGET_BYTES)
    for estimate in estimates:
        table.add_row(
            [
                estimate.slot_bytes,
                estimate.num_slots,
                format_value(estimate.register_bits_per_byte, 2),
                format_value(estimate.expected_fragmentation, 3),
                format_value(estimate.pointer_ops_per_packet, 2),
                format_value(estimate.expected_packets_capacity, 1),
            ]
        )
    result.tables.append(table)
    result.data["estimates"] = {e.slot_bytes: e for e in estimates}
    sizes_to_measure = (8,) if quick else (4, 8, 16)
    measured = TextTable(
        "Fragmentation measured on the byte-level chip model",
        ["Slot bytes", "measured stranded fraction"],
    )
    result.data["measured"] = {}
    tasks = [(slot_bytes, seed) for slot_bytes in sizes_to_measure]
    fractions = parallel_map(
        _fragmentation_task,
        tasks,
        jobs=jobs,
        codec="json",
        payloads=tasks,
    )
    for slot_bytes, fraction in zip(sizes_to_measure, fractions):
        result.data["measured"][slot_bytes] = fraction
        measured.add_row([slot_bytes, format_value(fraction, 3)])
    result.tables.append(measured)
    result.notes.append(
        "Eight bytes sits at the knee: a quarter of the register overhead "
        "of 4-byte slots for half the fragmentation of 16-byte slots — "
        "the balance the designers describe choosing."
    )
    return result
