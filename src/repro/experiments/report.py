"""Common result containers and formatting for the experiment harness.

Every experiment module (``table1`` … ``table6``, ``figure1``, ``figure3``)
exposes ``run(quick=False, seed=...) -> ExperimentResult``.  ``quick`` runs
a shortened version suitable for the benchmark harness; the full version
is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.tables import TextTable

__all__ = [
    "ExperimentResult",
    "FULL_WARMUP",
    "FULL_MEASURE",
    "QUICK_WARMUP",
    "QUICK_MEASURE",
    "sim_cycles",
]

#: Simulation windows (network cycles) for full experiment runs.
FULL_WARMUP = 1500
FULL_MEASURE = 6000

#: Shortened windows for the quick/benchmark runs.
QUICK_WARMUP = 200
QUICK_MEASURE = 900


def sim_cycles(quick: bool) -> tuple[int, int]:
    """(warmup, measure) cycle counts for the requested fidelity."""
    if quick:
        return QUICK_WARMUP, QUICK_MEASURE
    return FULL_WARMUP, FULL_MEASURE


@dataclass
class ExperimentResult:
    """Output of one experiment: tables plus free-form notes."""

    experiment_id: str
    title: str
    paper_reference: str
    tables: list[TextTable] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Structured data for programmatic checks (tests assert on this).
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable report: header, tables, notes."""
        lines = [
            f"[{self.experiment_id}] {self.title}",
            f"Reproduces: {self.paper_reference}",
            "",
        ]
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        if self.notes:
            lines.append("Notes:")
            lines.extend(f"  - {note}" for note in self.notes)
        return "\n".join(lines)
