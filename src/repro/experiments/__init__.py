"""Experiment harness: one module per paper table/figure.

Use :func:`repro.experiments.runner.run_experiment` (or the CLI,
``python -m repro.experiments``) to regenerate any artifact.  Each module
also exposes its parameters so tests and benchmarks can assert on the
underlying data rather than on formatted strings.
"""

from repro.experiments.report import ExperimentResult

__all__ = ["ExperimentResult"]
