"""Export experiment results to CSV for external plotting.

``python -m repro.experiments table4 --csv-dir results/`` writes one CSV
per table of each experiment, named ``<experiment>_<n>.csv``.  The CSV
mirrors the printed table: header row from the column names, then data
rows.  Values keep the table's formatting (the printed tables are the
canonical artifact; CSV is a convenience for plotting).
"""

from __future__ import annotations

import csv
import re
from pathlib import Path

from repro.experiments.report import ExperimentResult
from repro.utils.tables import TextTable

__all__ = ["export_result", "export_table", "slugify"]


def slugify(text: str) -> str:
    """File-name-safe slug of a table title."""
    slug = re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")
    return slug[:60] or "table"


def export_table(table: TextTable, path: Path) -> Path:
    """Write one table as CSV; returns the path written."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        writer.writerows(table.rows)
    return path


def export_result(result: ExperimentResult, directory: Path | str) -> list[Path]:
    """Write every table of an experiment; returns the paths written."""
    directory = Path(directory)
    written = []
    for index, table in enumerate(result.tables):
        name = f"{result.experiment_id}_{index}_{slugify(table.title)}.csv"
        written.append(export_table(table, directory / name))
    return written
