"""Per-network fault policy and detection counters for the chip model.

The ComCoBB model is fault-free by default: every illegal wire sequence is
a modelling bug and raises :class:`~repro.errors.ProtocolError`.  When the
fault-injection subsystem (:mod:`repro.faults`) is active, the same events
are *expected* — a flipped header bit produces an unknown circuit, a
flipped length byte desynchronizes the receive FSM — and the chips must
degrade gracefully instead of crashing the simulation.

:class:`ChipFaultPolicy` is the knob: it turns on the link-level checksum
byte of the wire protocol and selects between *detect-and-raise* (the
error hierarchy fires on the first detected fault) and *degrade* (corrupt
packets are dropped or forwarded-and-counted, and the receive FSMs resync
on the next start bit).  One policy instance is shared by every chip and
host adapter of a :class:`~repro.chip.network.ChipNetwork`, so its
:class:`FaultCounters` aggregate detection events network-wide.

This module deliberately lives inside :mod:`repro.chip` (not
:mod:`repro.faults`) so the chip layer never imports the fault package —
the dependency points one way: faults → chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["ChipFaultPolicy", "FaultCounters"]


@dataclass
class FaultCounters:
    """Detection and degradation events, aggregated network-wide."""

    #: Link checksum byte did not match the received packet (input port).
    checksum_failures: int = 0
    #: Header byte named no programmed circuit, or an illegal turn-around.
    header_faults: int = 0
    #: Length byte outside the legal 1-32 range.
    length_faults: int = 0
    #: Data byte sampled while the receive FSM was idle (framing lost).
    stray_symbols: int = 0
    #: Start bit sampled mid-packet; the FSM resynchronized on it.
    resyncs: int = 0
    #: Corrupt packets removed from a buffer before transmission began.
    packets_aborted: int = 0
    #: Corrupt packets that were already cutting through; padded/forwarded.
    packets_poisoned: int = 0
    #: Packets the buffer could not even accept (free list exhausted).
    receive_overflows: int = 0
    #: Cut-through reads that outran a stalled writer; packet padded.
    read_underruns: int = 0
    #: Checksum failures detected at the host delivery interface.
    host_checksum_failures: int = 0
    #: Message reassemblies dropped because they stopped making progress.
    stale_assemblies_flushed: int = 0

    @property
    def total_detected(self) -> int:
        """Every detection event (the fault-campaign headline number)."""
        return sum(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> dict[str, int]:
        """Counter name → value, for reports."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    # -- checkpoint serialization ------------------------------------------

    def snapshot_state(self) -> dict[str, int]:
        """JSON-able counter snapshot (same shape as :meth:`as_dict`)."""
        return self.as_dict()

    def restore_state(self, state: dict[str, int]) -> None:
        """Overwrite every counter from a :meth:`snapshot_state` dict."""
        for f in fields(self):
            setattr(self, f.name, state[f.name])


@dataclass
class ChipFaultPolicy:
    """How a chip network detects and survives injected faults.

    Parameters
    ----------
    checksum:
        Append a checksum byte (XOR of header, length and data bytes) to
        every packet on every link, verified by the receiving input port
        and host adapter.  Costs one wire cycle per packet.
    degrade:
        When True, detected faults are counted and contained (packets
        dropped, FSMs resynchronized) and the simulation keeps running;
        when False, the first detected fault raises
        :class:`~repro.errors.ProtocolError` — useful for tests that
        assert detection actually fires.
    """

    checksum: bool = True
    degrade: bool = True
    counters: FaultCounters = field(default_factory=FaultCounters)

    # -- checkpoint serialization ------------------------------------------

    def snapshot_state(self) -> dict[str, object]:
        """Policy knobs plus the aggregated counters, JSON-able."""
        return {
            "checksum": self.checksum,
            "degrade": self.degrade,
            "counters": self.counters.snapshot_state(),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Overwrite the policy with a :meth:`snapshot_state` dict."""
        self.checksum = bool(state["checksum"])
        self.degrade = bool(state["degrade"])
        counters = state["counters"]
        if not isinstance(counters, dict):
            raise TypeError("fault-policy snapshot is missing its counters")
        self.counters.restore_state(counters)
