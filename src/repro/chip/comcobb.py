"""The ComCoBB chip: five ports, DAMQ buffers, crossbar and arbiter.

The communication coprocessor of Section 3 has four network ports and a
processor interface, all connected by a 5×5 crossbar.  Each port pairs an
:class:`~repro.chip.input_port.InputPort` (with its own DAMQ buffer and
virtual-circuit router) with an :class:`~repro.chip.output_port.OutputPort`;
ports are autonomous and all nine datapaths (4 in + 4 out + processor
interface) can be active in the same cycle.

The chip exposes the five per-cycle phases the network driver calls in a
fixed global order (drive → sample → arbitrate → latch → flow control),
which realizes the two-phase-clock overlap of the real design at
cycle granularity.
"""

from __future__ import annotations

from repro.chip.arbiter import ChipArbiter
from repro.chip.degrade import ChipFaultPolicy
from repro.chip.input_port import InputPort
from repro.chip.output_port import OutputPort
from repro.chip.router import CircuitRouter
from repro.chip.slots import DamqBufferHw
from repro.chip.trace import TraceRecorder
from repro.errors import ConfigurationError, FaultError

__all__ = ["ComCoBBChip", "NUM_PORTS", "PROCESSOR_PORT", "DEFAULT_SLOTS"]

#: Four network ports plus the processor interface.
NUM_PORTS = 5

#: Index of the processor-interface port.
PROCESSOR_PORT = 4

#: ComCoBB buffer pool: 96 static cells per bus line = 12 eight-byte slots.
DEFAULT_SLOTS = 12


class ComCoBBChip:
    """One communication coprocessor.

    Parameters
    ----------
    name:
        Identifier used in traces ("node3" etc.).
    num_slots:
        Slots per input buffer (12 in the real chip).
    stop_threshold:
        Free-slot level below which an input port asserts flow control.
    trace:
        Optional shared :class:`TraceRecorder`.
    faults:
        Optional :class:`ChipFaultPolicy` enabling the link checksum byte
        and graceful degradation on detected faults.
    """

    def __init__(
        self,
        name: str,
        num_slots: int = DEFAULT_SLOTS,
        stop_threshold: int | None = None,
        trace: TraceRecorder | None = None,
        slot_bytes: int = 8,
        faults: ChipFaultPolicy | None = None,
    ) -> None:
        if stop_threshold is None:
            # Reserve room for one maximum-size packet plus the remaining
            # continuation slots of a packet still streaming in.
            max_packet_slots = -(-32 // slot_bytes)
            stop_threshold = 2 * max_packet_slots - 1
        if num_slots < stop_threshold:
            raise ConfigurationError(
                "buffer smaller than the flow-control threshold can never "
                "accept a packet"
            )
        self.name = name
        self.num_slots = num_slots
        self.stop_threshold = stop_threshold
        self.slot_bytes = slot_bytes
        self.trace = trace
        self.faults = faults
        self.buffers = [
            DamqBufferHw(num_slots, NUM_PORTS, port, slot_bytes=slot_bytes)
            for port in range(NUM_PORTS)
        ]
        self.routers = [CircuitRouter(port, NUM_PORTS) for port in range(NUM_PORTS)]
        self.input_ports = [
            InputPort(
                port,
                name,
                self.buffers[port],
                self.routers[port],
                stop_threshold,
                trace,
                faults=faults,
            )
            for port in range(NUM_PORTS)
        ]
        self.output_ports = [
            OutputPort(port, name, trace, faults=faults)
            for port in range(NUM_PORTS)
        ]
        self.arbiter = ChipArbiter(name, NUM_PORTS, trace)

    # ------------------------------------------------------------------
    # Per-cycle phases (called by the network in global order)
    # ------------------------------------------------------------------

    def drive(self, cycle: int) -> None:
        """Phase 1: output ports put latched values on their wires."""
        for port in self.output_ports:
            port.drive(cycle)

    def sample(self, cycle: int) -> None:
        """Phase 2: input ports sample wires and run the receive FSMs."""
        for port in self.input_ports:
            port.sample(cycle)

    def arbitrate(self, cycle: int) -> None:
        """Phase 3: the central arbiter makes new crossbar grants."""
        self.arbiter.tick(cycle, self.buffers, self.output_ports)

    def latch(self, cycle: int) -> None:
        """Phase 4: output ports read the crossbar for next cycle's byte."""
        for port in self.output_ports:
            port.latch(cycle)

    def update_flow_control(self) -> None:
        """Phase 5: input ports refresh their stop lines."""
        for port in self.input_ports:
            port.update_flow_control()

    # ------------------------------------------------------------------
    # Graceful degradation
    # ------------------------------------------------------------------

    def retire_slot(self, port: int, slot: int | None = None) -> int:
        """Take one buffer slot of an input port out of service.

        Models a hard storage failure: the slot is removed from the free
        list and never allocated again, so the port keeps operating at
        reduced capacity.  Refuses to retire below the flow-control
        threshold — an input port whose free list can never reach
        ``stop_threshold`` would assert its stop line forever and
        deadlock the link.
        """
        if not 0 <= port < NUM_PORTS:
            raise ConfigurationError(f"no such port: {port}")
        buffer = self.buffers[port]
        if buffer.lists.usable_slots - 1 < self.stop_threshold:
            raise FaultError(
                f"{self.name}.in{port}: retiring another slot would leave "
                f"{buffer.lists.usable_slots - 1} usable slots, below the "
                f"flow-control threshold of {self.stop_threshold}"
            )
        return buffer.retire_slot(slot)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def resident_packets(self) -> int:
        """Packets currently buffered anywhere on the chip."""
        return sum(buffer.total_packets() for buffer in self.buffers)

    @property
    def busy(self) -> bool:
        """Whether any datapath on the chip is mid-flight."""
        return self.resident_packets > 0 or any(
            port.busy for port in self.output_ports
        )

    def check_invariants(self) -> None:
        """Run every buffer's structural self-check."""
        for buffer in self.buffers:
            buffer.check_invariants()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ComCoBBChip({self.name!r}, resident={self.resident_packets})"
