"""Topology builders and path routing for ComCoBB multicomputers.

The ComCoBB chip has four network ports, so a node can have up to four
neighbours — enough for rings, chains, stars, 2D meshes and small complete
graphs, the topologies the multicomputer literature of the era built.
These helpers wire such networks and open circuits along shortest paths,
so examples and tests don't hand-assign ports.

Port assignment is automatic: each ``connect`` consumes the lowest free
network port on both nodes.
"""

from __future__ import annotations

from typing import Any

from collections import deque

from repro.chip.comcobb import PROCESSOR_PORT
from repro.chip.network import ChipNetwork, Circuit
from repro.errors import ConfigurationError, RoutingError

__all__ = [
    "TopologyBuilder",
    "build_chain",
    "build_ring",
    "build_star",
    "build_mesh",
    "build_complete",
    "shortest_path",
    "open_shortest_circuit",
]


class TopologyBuilder:
    """Incrementally wires a :class:`ChipNetwork` with automatic ports."""

    def __init__(self, network: ChipNetwork) -> None:
        self.network = network
        self._next_port: dict[str, int] = {}

    def add_node(self, name: str) -> None:
        """Create a node and start its port allocator."""
        self.network.add_node(name)
        self._next_port[name] = 0

    def connect(self, name_a: str, name_b: str) -> tuple[int, int]:
        """Join two nodes on their lowest free ports; return those ports."""
        port_a = self._claim_port(name_a)
        port_b = self._claim_port(name_b)
        self.network.connect(name_a, port_a, name_b, port_b)
        return port_a, port_b

    def _claim_port(self, name: str) -> int:
        if name not in self._next_port:
            raise ConfigurationError(f"unknown node {name!r}")
        port = self._next_port[name]
        if port >= PROCESSOR_PORT:
            raise ConfigurationError(
                f"node {name!r} has no free network port (max 4 neighbours)"
            )
        self._next_port[name] = port + 1
        return port


def _named_network(
    count: int, prefix: str, **kwargs: Any
) -> tuple[ChipNetwork, list[str], TopologyBuilder]:
    if count < 2:
        raise ConfigurationError("a topology needs at least two nodes")
    network = ChipNetwork(**kwargs)
    builder = TopologyBuilder(network)
    names = [f"{prefix}{index}" for index in range(count)]
    for name in names:
        builder.add_node(name)
    return network, names, builder


def build_chain(
    count: int, prefix: str = "node", **kwargs: Any
) -> tuple[ChipNetwork, list[str]]:
    """A linear array: node0 — node1 — … — node(n-1)."""
    network, names, builder = _named_network(count, prefix, **kwargs)
    for left, right in zip(names[:-1], names[1:]):
        builder.connect(left, right)
    return network, names


def build_ring(
    count: int, prefix: str = "node", **kwargs: Any
) -> tuple[ChipNetwork, list[str]]:
    """A bidirectional ring of ``count`` nodes."""
    if count < 3:
        raise ConfigurationError("a ring needs at least three nodes")
    network, names, builder = _named_network(count, prefix, **kwargs)
    for index in range(count):
        builder.connect(names[index], names[(index + 1) % count])
    return network, names


def build_star(
    leaves: int, prefix: str = "leaf", hub: str = "hub", **kwargs: Any
) -> tuple[ChipNetwork, list[str]]:
    """One hub with up to four leaves."""
    if not 1 <= leaves <= 4:
        raise ConfigurationError("a ComCoBB hub supports one to four leaves")
    network = ChipNetwork(**kwargs)
    builder = TopologyBuilder(network)
    builder.add_node(hub)
    names = [f"{prefix}{index}" for index in range(leaves)]
    for name in names:
        builder.add_node(name)
        builder.connect(hub, name)
    return network, [hub] + names


def build_mesh(
    rows: int, columns: int, prefix: str = "node", **kwargs: Any
) -> tuple[ChipNetwork, list[str]]:
    """A 2D mesh; interior nodes use all four ports."""
    if rows < 1 or columns < 1 or rows * columns < 2:
        raise ConfigurationError("mesh needs at least two nodes")
    network = ChipNetwork(**kwargs)
    builder = TopologyBuilder(network)
    names = [
        [f"{prefix}_{row}_{column}" for column in range(columns)]
        for row in range(rows)
    ]
    for row_names in names:
        for name in row_names:
            builder.add_node(name)
    for row in range(rows):
        for column in range(columns):
            if column + 1 < columns:
                builder.connect(names[row][column], names[row][column + 1])
            if row + 1 < rows:
                builder.connect(names[row][column], names[row + 1][column])
    return network, [name for row_names in names for name in row_names]


def build_complete(
    count: int, prefix: str = "node", **kwargs: Any
) -> tuple[ChipNetwork, list[str]]:
    """A complete graph (count <= 5, since each node has four ports)."""
    if not 2 <= count <= 5:
        raise ConfigurationError(
            "a complete ComCoBB graph supports two to five nodes"
        )
    network, names, builder = _named_network(count, prefix, **kwargs)
    for index, left in enumerate(names):
        for right in names[index + 1 :]:
            builder.connect(left, right)
    return network, names


def shortest_path(network: ChipNetwork, source: str, destination: str) -> list[str]:
    """Breadth-first shortest node path over the wired adjacency."""
    if source not in network.nodes or destination not in network.nodes:
        raise ConfigurationError("unknown source or destination node")
    if source == destination:
        raise ConfigurationError("source and destination must differ")
    neighbours: dict[str, set[str]] = {}
    for (name, _port), (other, _other_port) in network._adjacency.items():
        neighbours.setdefault(name, set()).add(other)
    frontier = deque([source])
    parent: dict[str, str] = {source: source}
    while frontier:
        here = frontier.popleft()
        if here == destination:
            path = [here]
            while path[-1] != source:
                path.append(parent[path[-1]])
            return list(reversed(path))
        for neighbour in sorted(neighbours.get(here, ())):
            if neighbour not in parent:
                parent[neighbour] = here
                frontier.append(neighbour)
    raise RoutingError(f"no path from {source!r} to {destination!r}")


def open_shortest_circuit(
    network: ChipNetwork, source: str, destination: str
) -> Circuit:
    """Open a virtual circuit along the BFS-shortest path."""
    return network.open_circuit(shortest_path(network, source, destination))
