"""The chip's central crossbar arbiter (Section 3.2.2).

"The crossbar is controlled by a central arbiter which determines which
buffers are to be connected to which output ports ... based upon data it
receives from each of the buffers, so that a buffer is never connected to
a port to which it has no data."

Each cycle, for every idle output port whose downstream receiver has not
asserted flow control, the arbiter considers the buffers holding a
transmittable head packet for that port (length register loaded, read port
free) and grants the longest queue; stale counts break ties in favour of
queues that have waited longest, and a rotating priority breaks the rest.
A grant made in cycle ``t`` results in a start bit on the wire in cycle
``t + 1`` — the latch/drive pipeline of :class:`OutputPort` — which is the
Table 1 schedule (arbitration latched in cycle 3, start bit in cycle 4).
"""

from __future__ import annotations

from repro.chip.output_port import OutputPort
from repro.chip.slots import DamqBufferHw
from repro.chip.trace import TraceRecorder
from repro.errors import InvariantError

__all__ = ["ChipArbiter"]


class ChipArbiter:
    """Longest-queue, stale-count-fair crossbar arbiter for one chip."""

    def __init__(
        self,
        chip_name: str,
        num_ports: int,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.chip_name = chip_name
        self.num_ports = num_ports
        self.trace = trace
        self._stale = [[0] * num_ports for _ in range(num_ports)]
        self._priority = 0
        self.grants_made = 0

    def tick(
        self,
        cycle: int,
        buffers: list[DamqBufferHw],
        output_ports: list[OutputPort],
    ) -> None:
        """Grant idle output ports to requesting buffers."""
        granted_buffers: set[int] = set()
        for offset in range(self.num_ports):
            output_id = (self._priority + offset) % self.num_ports
            port = output_ports[output_id]
            if port.busy or port.downstream_stopped:
                continue
            best_input = None
            best_key = None
            for input_id, buffer in enumerate(buffers):
                if input_id == output_id or input_id in granted_buffers:
                    continue
                if not buffer.transmittable(output_id):
                    continue
                key = (
                    buffer.queue_length(output_id),
                    self._stale[input_id][output_id],
                    -input_id,
                )
                if best_key is None or key > best_key:
                    best_key = key
                    best_input = input_id
            if best_input is None:
                continue
            buffer = buffers[best_input]
            packet = buffer.head_packet(output_id)
            if packet is None:
                raise InvariantError(
                    f"{self.chip_name}: buffer {best_input} advertised a "
                    f"transmittable head for output {output_id} but holds none"
                )
            port.grant(buffer, packet, cycle)
            granted_buffers.add(best_input)
            self._stale[best_input][output_id] = 0
            self.grants_made += 1
        self._age_queues(buffers)
        self._priority = (self._priority + 1) % self.num_ports

    def _age_queues(self, buffers: list[DamqBufferHw]) -> None:
        """Increment stale counts of waiting, unserved queues."""
        for input_id, buffer in enumerate(buffers):
            for output_id in range(self.num_ports):
                if buffer.queue_length(output_id) > 0:
                    self._stale[input_id][output_id] += 1
                else:
                    self._stale[input_id][output_id] = 0
