"""Slot-size tradeoff model (Section 3.2.3).

The paper's designers weighed slot sizes before settling on eight bytes:

* *small slots* waste little storage to internal fragmentation but need a
  pointer/length/header register per slot ("because any slot can be the
  first slot of a packet") and more pointer manipulation per byte moved;
* *large slots* amortize the registers but strand unused bytes — a
  four-byte packet in a 32-byte slot wastes twenty-eight bytes.

This module quantifies both sides for any slot size and packet-length
distribution: register bits per buffered data byte, expected internal
fragmentation, pointer operations per packet, and the resulting *effective
capacity* of a fixed byte budget.  The accompanying ablation benchmark
then confirms the static model against the byte-level chip simulation.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

from repro.chip.slots import MAX_PACKET_BYTES
from repro.errors import ConfigurationError

__all__ = [
    "SlotSizeEstimate",
    "estimate_slot_size",
    "slot_size_sweep",
    "uniform_length_distribution",
]

#: Register widths, in bits, following the micro-architecture of Sec. 3.1:
#: a length register must count up to 32 and a header register holds one
#: byte.  The pointer register needs log2(num_slots) bits (computed).
LENGTH_REGISTER_BITS = 6
HEADER_REGISTER_BITS = 8


def uniform_length_distribution(
    low: int = 1, high: int = MAX_PACKET_BYTES
) -> dict[int, float]:
    """Packet lengths uniform on [low, high] — a simple reference mix."""
    if not 1 <= low <= high <= MAX_PACKET_BYTES:
        raise ConfigurationError(f"bad length range [{low}, {high}]")
    weight = 1.0 / (high - low + 1)
    return {length: weight for length in range(low, high + 1)}


@dataclass(frozen=True)
class SlotSizeEstimate:
    """Cost/benefit summary of one slot size for one buffer budget."""

    slot_bytes: int
    buffer_bytes: int
    num_slots: int
    #: Register bits spent per data byte of buffer (the area overhead).
    register_bits_per_byte: float
    #: Expected fraction of occupied slot bytes wasted by fragmentation.
    expected_fragmentation: float
    #: Expected slots touched (pointer operations) per packet.
    pointer_ops_per_packet: float
    #: Expected packets a full buffer can hold under the length mix.
    expected_packets_capacity: float

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"slot={self.slot_bytes:2d}B: {self.num_slots:3d} slots, "
            f"{self.register_bits_per_byte:.2f} reg-bits/byte, "
            f"{100 * self.expected_fragmentation:.1f}% fragmentation, "
            f"{self.pointer_ops_per_packet:.2f} ptr-ops/packet, "
            f"~{self.expected_packets_capacity:.1f} packets capacity"
        )


def estimate_slot_size(
    slot_bytes: int,
    buffer_bytes: int = 96,
    lengths: Mapping[int, float] | None = None,
) -> SlotSizeEstimate:
    """Evaluate one slot size against a fixed data-RAM budget.

    Parameters
    ----------
    slot_bytes:
        Candidate slot size (the paper weighs 4, 8 and 32).
    buffer_bytes:
        Data-storage budget per input port (96 cells in the ComCoBB).
    lengths:
        Packet-length distribution ``{length: probability}``; defaults to
        uniform over 1..32.
    """
    if slot_bytes < 1:
        raise ConfigurationError("slot size must be at least one byte")
    if buffer_bytes < slot_bytes:
        raise ConfigurationError("budget smaller than one slot")
    if lengths is None:
        lengths = uniform_length_distribution()
    total = sum(lengths.values())
    if not math.isclose(total, 1.0, abs_tol=1e-9):
        raise ConfigurationError(f"length probabilities sum to {total}")
    num_slots = buffer_bytes // slot_bytes
    max_packet_slots = -(-MAX_PACKET_BYTES // slot_bytes)
    if num_slots < max_packet_slots:
        raise ConfigurationError(
            f"{buffer_bytes}-byte budget cannot hold a maximum packet at "
            f"slot size {slot_bytes}"
        )
    pointer_bits = max(1, math.ceil(math.log2(num_slots)))
    per_slot_register_bits = (
        pointer_bits + LENGTH_REGISTER_BITS + HEADER_REGISTER_BITS
    )
    register_bits_per_byte = per_slot_register_bits / slot_bytes

    expected_slots = 0.0
    expected_waste = 0.0
    expected_length = 0.0
    for length, probability in lengths.items():
        slots_needed = -(-length // slot_bytes)
        expected_slots += probability * slots_needed
        expected_waste += probability * (slots_needed * slot_bytes - length)
        expected_length += probability * length
    fragmentation = expected_waste / (expected_slots * slot_bytes)
    return SlotSizeEstimate(
        slot_bytes=slot_bytes,
        buffer_bytes=buffer_bytes,
        num_slots=num_slots,
        register_bits_per_byte=register_bits_per_byte,
        expected_fragmentation=fragmentation,
        pointer_ops_per_packet=expected_slots,
        expected_packets_capacity=num_slots / expected_slots,
    )


def slot_size_sweep(
    slot_sizes: tuple[int, ...] = (4, 8, 16, 32),
    buffer_bytes: int = 96,
    lengths: Mapping[int, float] | None = None,
) -> list[SlotSizeEstimate]:
    """The paper's tradeoff table: every candidate size, one budget."""
    return [
        estimate_slot_size(slot_bytes, buffer_bytes, lengths)
        for slot_bytes in slot_sizes
    ]
