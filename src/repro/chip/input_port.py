"""Input port: start-bit detector, synchronizer, receiver FSM (Sec. 3.2.1).

Every cycle the port samples its incoming link, pushes the value through
the one-cycle synchronizer, and interprets the *released* stream:

====================  =========================================
released value        receiver action
====================  =========================================
start bit             arm for a header byte
header byte           router lookup; claim the free-list head
                      slot onto the destination list; store the
                      new header register
length byte           load the length register and write counter
data byte             write into the current slot, allocating a
                      continuation slot every eight bytes
checksum byte         (fault policy only) verify the link
                      checksum accumulated over header, length
                      and data
====================  =========================================

This matches Table 1: a start bit sampled in cycle 0 yields a routed,
enqueued packet in cycle 2 and a loaded length register in cycle 3, with
data flowing into the buffer from cycle 4 on.

The port also drives the link's *stop* line for flow control: when the
free list drops below ``stop_threshold`` slots, the upstream output port
must not start new packets (in-flight packets always complete; the
threshold reserves room for one maximum-size packet plus the tail of the
packet currently streaming in).

Fault handling
--------------
With a :class:`~repro.chip.degrade.ChipFaultPolicy` in *degrade* mode the
port contains corruption instead of raising: an unknown header or illegal
length discards the rest of the packet and resynchronizes on the next
start bit; a checksum mismatch aborts the packet (frees its slots) when
transmission has not begun, or pads-and-poisons it when the packet is
already cutting through downstream.  Every event increments the policy's
shared :class:`~repro.chip.degrade.FaultCounters`.
"""

from __future__ import annotations

import enum

from repro.chip.degrade import ChipFaultPolicy
from repro.chip.router import CircuitRouter
from repro.chip.slots import DamqBufferHw, HwPacket
from repro.chip.synchronizer import Synchronizer
from repro.chip.trace import TraceRecorder
from repro.chip.wires import START, Link
from repro.errors import (
    BufferFullError,
    InvariantError,
    ProtocolError,
    RoutingError,
)

__all__ = ["InputPort", "DEFAULT_STOP_THRESHOLD"]

#: Free-slot threshold below which the stop line is asserted: four slots
#: for a new maximum-size packet plus up to three continuation slots of a
#: packet still streaming in.
DEFAULT_STOP_THRESHOLD = 7


class _ReceiveState(enum.Enum):
    """What the next released byte means."""

    IDLE = "idle"
    HEADER = "header"
    LENGTH = "length"
    DATA = "data"
    CHECKSUM = "checksum"
    #: Degrade mode: a fault destroyed the packet framing; swallow bytes
    #: until the next start bit restores synchronization.
    DISCARD = "discard"


class InputPort:
    """One of the chip's receive datapaths."""

    def __init__(
        self,
        port_id: int,
        chip_name: str,
        buffer: DamqBufferHw,
        router: CircuitRouter,
        stop_threshold: int = DEFAULT_STOP_THRESHOLD,
        trace: TraceRecorder | None = None,
        faults: ChipFaultPolicy | None = None,
    ) -> None:
        self.port_id = port_id
        self.chip_name = chip_name
        self.buffer = buffer
        self.router = router
        self.stop_threshold = stop_threshold
        self.trace = trace
        self.faults = faults
        self.link: Link | None = None
        self.sync = Synchronizer()
        self._state = _ReceiveState.IDLE
        self._current: HwPacket | None = None
        self._checksum = 0
        self._last_start_cycle: int | None = None
        self.packets_received = 0

    @property
    def name(self) -> str:
        """Trace label."""
        return f"{self.chip_name}.in{self.port_id}"

    def attach(self, link: Link) -> None:
        """Connect the incoming link."""
        self.link = link

    @property
    def _degrading(self) -> bool:
        """Whether detected faults are contained rather than raised."""
        return self.faults is not None and self.faults.degrade

    @property
    def _checksummed(self) -> bool:
        """Whether the link protocol carries a checksum byte."""
        return self.faults is not None and self.faults.checksum

    # ------------------------------------------------------------------
    # Per-cycle behaviour
    # ------------------------------------------------------------------

    def sample(self, cycle: int) -> None:
        """Sample the wire, run the synchronizer, act on the released value."""
        if self.link is None:
            return
        value = self.link.data.sample()
        if value is START:
            self._last_start_cycle = cycle
            self._record(cycle, "start bit detected")
        released = self.sync.tick(value)
        if released is None:
            return
        if released is START:
            self._receive_start(cycle)
        elif self._state is _ReceiveState.HEADER:
            self._receive_header(cycle, released)
        elif self._state is _ReceiveState.LENGTH:
            self._receive_length(cycle, released)
        elif self._state is _ReceiveState.DATA:
            self._receive_data(cycle, released)
        elif self._state is _ReceiveState.CHECKSUM:
            self._receive_checksum(cycle, released)
        elif self._state is _ReceiveState.DISCARD:
            pass  # swallowing a corrupt packet's remains
        else:
            if self._degrading:
                if self.faults is None:
                    raise InvariantError(
                        f"{self.name}: degrading without a fault policy"
                    )
                self.faults.counters.stray_symbols += 1
                self._record(cycle, f"stray byte {released} ignored (fault)")
                return
            raise ProtocolError(
                f"{self.name}: unexpected byte {released!r} while idle"
            )

    def _receive_start(self, cycle: int) -> None:
        """A start bit left the synchronizer."""
        if self._state in (_ReceiveState.IDLE, _ReceiveState.DISCARD):
            if self._state is _ReceiveState.DISCARD:
                if self.faults is None:
                    raise InvariantError(
                        f"{self.name}: discard state without a fault policy"
                    )
                self.faults.counters.resyncs += 1
                self._record(cycle, "resynchronized on start bit")
            self._state = _ReceiveState.HEADER
            self._checksum = 0
            return
        if self._degrading:
            # A start bit inside a packet means framing was lost (a
            # corrupted length byte, most likely).  Contain the damage
            # and treat the start bit as the beginning of a new packet.
            if self.faults is None:
                raise InvariantError(
                    f"{self.name}: degrading without a fault policy"
                )
            self.faults.counters.resyncs += 1
            self._abandon_current(cycle, "start bit inside a packet")
            self._state = _ReceiveState.HEADER
            self._checksum = 0
            return
        raise ProtocolError(f"{self.name}: start bit inside a packet")

    def _receive_header(self, cycle: int, header: int) -> None:
        """Router lookup and slot claim (cycle 2 of Table 1)."""
        self._checksum ^= header
        try:
            entry = self.router.lookup(header)
            packet = self.buffer.begin_packet(
                destination=entry.output_port,
                new_header=entry.new_header,
                source_port=self.port_id,
            )
        except (RoutingError, ProtocolError, BufferFullError) as error:
            if self._degrading:
                if self.faults is None:
                    raise InvariantError(
                        f"{self.name}: degrading without a fault policy"
                    ) from error
                if isinstance(error, BufferFullError):
                    self.faults.counters.receive_overflows += 1
                else:
                    self.faults.counters.header_faults += 1
                self._state = _ReceiveState.DISCARD
                self._record(
                    cycle, f"header {header} rejected ({error}); discarding"
                )
                return
            raise
        packet.start_sampled_cycle = self._last_start_cycle
        self._current = packet
        self._state = _ReceiveState.LENGTH
        self._record(
            cycle,
            f"header {header} routed to output {entry.output_port} "
            f"(new header {entry.new_header}, slot {packet.slots[0]})",
        )

    def _receive_length(self, cycle: int, length: int) -> None:
        """Length decode (cycle 3 of Table 1)."""
        if self._current is None:
            raise InvariantError(f"{self.name}: length byte with no packet")
        self._checksum ^= length
        try:
            self.buffer.set_length(self._current, length)
        except ProtocolError:
            if self._degrading:
                if self.faults is None:
                    raise InvariantError(
                        f"{self.name}: degrading without a fault policy"
                    ) from None
                self.faults.counters.length_faults += 1
                # Length never loaded, so the packet was never
                # transmittable: aborting is always possible here.
                self.buffer.abort_packet(self._current)
                self.faults.counters.packets_aborted += 1
                self._current = None
                self._state = _ReceiveState.DISCARD
                self._record(
                    cycle, f"illegal length {length}; packet aborted"
                )
                return
            raise
        self._state = _ReceiveState.DATA
        self._record(cycle, f"length {length} latched into write counter")

    def _receive_data(self, cycle: int, byte: int) -> None:
        """One data byte into the buffer (cycles 4+ of Table 1)."""
        if self._current is None:
            raise InvariantError(f"{self.name}: data byte with no packet")
        if self._current.poisoned and self._current.fully_written:
            # The transmit side already padded this packet out (read
            # underrun after a corrupted length byte); the sender's real
            # tail bytes have nowhere to go.  Swallow them until the next
            # start bit resynchronizes the FSM.
            self._record(cycle, "byte for a padded packet discarded")
            return
        self._checksum ^= byte
        self.buffer.write_byte(self._current, byte)
        if self._current.fully_written:
            if self._checksummed:
                self._state = _ReceiveState.CHECKSUM
                return
            self._record(cycle, "EOP: write counter reached zero")
            self.packets_received += 1
            self._current = None
            self._state = _ReceiveState.IDLE

    def _receive_checksum(self, cycle: int, byte: int) -> None:
        """Verify the link checksum accumulated over the packet."""
        if self._current is None:
            raise InvariantError(f"{self.name}: checksum byte with no packet")
        if byte == self._checksum & 0xFF:
            self._record(cycle, "EOP: checksum verified")
            self.packets_received += 1
            self._current = None
            self._state = _ReceiveState.IDLE
            return
        if not self._degrading:
            raise ProtocolError(
                f"{self.name}: checksum mismatch (expected "
                f"{self._checksum & 0xFF}, got {byte})"
            )
        if self.faults is None:
            raise InvariantError(
                f"{self.name}: degrading without a fault policy"
            )
        self.faults.counters.checksum_failures += 1
        packet = self._current
        if packet.transmit_started:
            # Already cutting through: the corruption has propagated and
            # only the end-to-end transport can repair it.
            packet.poisoned = True
            self.faults.counters.packets_poisoned += 1
            self._record(cycle, "checksum mismatch on a cut-through packet")
        else:
            self.buffer.abort_packet(packet)
            self.faults.counters.packets_aborted += 1
            self._record(cycle, "checksum mismatch; packet aborted")
        self._current = None
        self._state = _ReceiveState.IDLE

    def _abandon_current(self, cycle: int, reason: str) -> None:
        """Contain a packet cut off mid-reception (degrade mode only)."""
        if self.faults is None:
            raise InvariantError(
                f"{self.name}: abandoning a packet without a fault policy"
            )
        packet = self._current
        self._current = None
        if packet is None:
            return
        if packet.transmit_started:
            self.buffer.pad_packet(packet)
            self.faults.counters.packets_poisoned += 1
            self._record(cycle, f"{reason}: cut-through packet padded")
        else:
            self.buffer.abort_packet(packet)
            self.faults.counters.packets_aborted += 1
            self._record(cycle, f"{reason}: packet aborted")

    def update_flow_control(self) -> None:
        """Drive the stop line from the free-list level."""
        if self.link is not None:
            self.link.stop = self.buffer.free_count < self.stop_threshold

    def _record(self, cycle: int, action: str) -> None:
        if self.trace is not None:
            self.trace.record(cycle, self.name, action)
