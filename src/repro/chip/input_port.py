"""Input port: start-bit detector, synchronizer, receiver FSM (Sec. 3.2.1).

Every cycle the port samples its incoming link, pushes the value through
the one-cycle synchronizer, and interprets the *released* stream:

====================  =========================================
released value        receiver action
====================  =========================================
start bit             arm for a header byte
header byte           router lookup; claim the free-list head
                      slot onto the destination list; store the
                      new header register
length byte           load the length register and write counter
data byte             write into the current slot, allocating a
                      continuation slot every eight bytes
====================  =========================================

This matches Table 1: a start bit sampled in cycle 0 yields a routed,
enqueued packet in cycle 2 and a loaded length register in cycle 3, with
data flowing into the buffer from cycle 4 on.

The port also drives the link's *stop* line for flow control: when the
free list drops below ``stop_threshold`` slots, the upstream output port
must not start new packets (in-flight packets always complete; the
threshold reserves room for one maximum-size packet plus the tail of the
packet currently streaming in).
"""

from __future__ import annotations

import enum

from repro.chip.router import CircuitRouter
from repro.chip.slots import DamqBufferHw, HwPacket
from repro.chip.synchronizer import Synchronizer
from repro.chip.trace import TraceRecorder
from repro.chip.wires import START, Link
from repro.errors import ProtocolError

__all__ = ["InputPort", "DEFAULT_STOP_THRESHOLD"]

#: Free-slot threshold below which the stop line is asserted: four slots
#: for a new maximum-size packet plus up to three continuation slots of a
#: packet still streaming in.
DEFAULT_STOP_THRESHOLD = 7


class _ReceiveState(enum.Enum):
    """What the next released byte means."""

    IDLE = "idle"
    HEADER = "header"
    LENGTH = "length"
    DATA = "data"


class InputPort:
    """One of the chip's receive datapaths."""

    def __init__(
        self,
        port_id: int,
        chip_name: str,
        buffer: DamqBufferHw,
        router: CircuitRouter,
        stop_threshold: int = DEFAULT_STOP_THRESHOLD,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.port_id = port_id
        self.chip_name = chip_name
        self.buffer = buffer
        self.router = router
        self.stop_threshold = stop_threshold
        self.trace = trace
        self.link: Link | None = None
        self.sync = Synchronizer()
        self._state = _ReceiveState.IDLE
        self._current: HwPacket | None = None
        self._last_start_cycle: int | None = None
        self.packets_received = 0

    @property
    def name(self) -> str:
        """Trace label."""
        return f"{self.chip_name}.in{self.port_id}"

    def attach(self, link: Link) -> None:
        """Connect the incoming link."""
        self.link = link

    # ------------------------------------------------------------------
    # Per-cycle behaviour
    # ------------------------------------------------------------------

    def sample(self, cycle: int) -> None:
        """Sample the wire, run the synchronizer, act on the released value."""
        if self.link is None:
            return
        value = self.link.data.sample()
        if value is START:
            self._last_start_cycle = cycle
            self._record(cycle, "start bit detected")
        released = self.sync.tick(value)
        if released is None:
            return
        if released is START:
            if self._state is not _ReceiveState.IDLE:
                raise ProtocolError(
                    f"{self.name}: start bit inside a packet"
                )
            self._state = _ReceiveState.HEADER
        elif self._state is _ReceiveState.HEADER:
            self._receive_header(cycle, released)
        elif self._state is _ReceiveState.LENGTH:
            self._receive_length(cycle, released)
        elif self._state is _ReceiveState.DATA:
            self._receive_data(cycle, released)
        else:
            raise ProtocolError(
                f"{self.name}: unexpected byte {released!r} while idle"
            )

    def _receive_header(self, cycle: int, header: int) -> None:
        """Router lookup and slot claim (cycle 2 of Table 1)."""
        entry = self.router.lookup(header)
        packet = self.buffer.begin_packet(
            destination=entry.output_port,
            new_header=entry.new_header,
            source_port=self.port_id,
        )
        packet.start_sampled_cycle = self._last_start_cycle
        self._current = packet
        self._state = _ReceiveState.LENGTH
        self._record(
            cycle,
            f"header {header} routed to output {entry.output_port} "
            f"(new header {entry.new_header}, slot {packet.slots[0]})",
        )

    def _receive_length(self, cycle: int, length: int) -> None:
        """Length decode (cycle 3 of Table 1)."""
        assert self._current is not None
        self.buffer.set_length(self._current, length)
        self._state = _ReceiveState.DATA
        self._record(
            cycle, f"length {length} latched into write counter"
        )

    def _receive_data(self, cycle: int, byte: int) -> None:
        """One data byte into the buffer (cycles 4+ of Table 1)."""
        assert self._current is not None
        self.buffer.write_byte(self._current, byte)
        if self._current.fully_written:
            self._record(cycle, "EOP: write counter reached zero")
            self.packets_received += 1
            self._current = None
            self._state = _ReceiveState.IDLE

    def update_flow_control(self) -> None:
        """Drive the stop line from the free-list level."""
        if self.link is not None:
            self.link.stop = self.buffer.free_count < self.stop_threshold

    def _record(self, cycle: int, action: str) -> None:
        if self.trace is not None:
            self.trace.record(cycle, self.name, action)
