"""Per-input-port virtual-circuit router (Section 3.2).

The ComCoBB routes packets over *virtual circuits*: the header byte of an
arriving packet indexes a local table that yields the output port and the
new header byte to use on the next hop.  One router (and one table) exists
per input port; the table is programmed when a circuit is opened
(:meth:`repro.chip.network.ChipNetwork.open_circuit`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, RoutingError

__all__ = ["RouteEntry", "CircuitRouter"]

#: Headers are a single byte on the wire.
MAX_HEADER = 255


@dataclass(frozen=True)
class RouteEntry:
    """One virtual-circuit table entry: where to send, what to relabel."""

    output_port: int
    new_header: int


class CircuitRouter:
    """Routing table of one input port.

    Parameters
    ----------
    port_id:
        The input port this router serves; routes back to the paired
        output port are rejected (the DAMQ buffer keeps no list for it).
    num_ports:
        Ports on the chip (output-port indices must be below this).
    """

    def __init__(self, port_id: int, num_ports: int) -> None:
        self.port_id = port_id
        self.num_ports = num_ports
        self._table: dict[int, RouteEntry] = {}

    def program(self, header: int, output_port: int, new_header: int) -> None:
        """Install a circuit hop in the table."""
        self._check_header(header)
        self._check_header(new_header)
        if not 0 <= output_port < self.num_ports:
            raise ConfigurationError(f"output port {output_port} out of range")
        if output_port == self.port_id:
            raise ConfigurationError(
                f"port {self.port_id}: circuits may not route straight back "
                f"out of the paired output port"
            )
        if header in self._table:
            raise ConfigurationError(
                f"port {self.port_id}: header {header} already programmed"
            )
        self._table[header] = RouteEntry(output_port, new_header)

    def lookup(self, header: int) -> RouteEntry:
        """Route an arriving packet (cycle 2, phase 1 of Table 1)."""
        self._check_header(header)
        try:
            return self._table[header]
        except KeyError:
            raise RoutingError(
                f"port {self.port_id}: no circuit for header {header}"
            ) from None

    def clear(self, header: int) -> None:
        """Tear down one circuit hop."""
        self._table.pop(header, None)

    @property
    def circuit_count(self) -> int:
        """Number of programmed circuits."""
        return len(self._table)

    def free_header(self) -> int:
        """Smallest header byte not yet in use (circuit allocation)."""
        for header in range(MAX_HEADER + 1):
            if header not in self._table:
                return header
        raise RoutingError(
            f"port {self.port_id}: all {MAX_HEADER + 1} headers in use"
        )

    def _check_header(self, header: int) -> None:
        if not 0 <= header <= MAX_HEADER:
            raise ConfigurationError(f"header {header} is not a byte")
