"""The DAMQ buffer datapath: slot array, per-slot registers, linked lists.

This is the byte-granularity hardware model of Section 3.1/3.2.3.  The
buffer pool is an array of eight-byte slots addressed (in the real chip) by
read/write shift registers; every slot carries three registers — a pointer
register (modeled by :class:`~repro.core.linkedlist.SlotListManager`), a
length register and a new-header register — because any slot can be the
first slot of a packet.  Packets occupy one to four slots; the slots of a
packet are chained on the linked list of the packet's destination port and
recycled through the free list one at a time as the transmitter drains
them.

The receiver and transmitter FSMs coordinate through :class:`HwPacket`
progress records (the counters and shared signals the paper describes as
"interacting via registers and a few shared signals"), which let a packet
be written and read in the same cycle — the property virtual cut-through
depends on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.linkedlist import SlotListManager
from repro.errors import (
    BufferEmptyError,
    ConfigurationError,
    FaultError,
    InvariantError,
    ProtocolError,
)

__all__ = ["SLOT_BYTES", "MAX_PACKET_BYTES", "HwPacket", "DamqBufferHw"]

#: Slot size chosen in Section 3.2.3 after the area/bookkeeping tradeoff.
#: :class:`DamqBufferHw` accepts other sizes so the tradeoff can be
#: re-explored (see :mod:`repro.chip.area`).
SLOT_BYTES = 8

#: Maximum data bytes per packet in the ComCoBB protocol.
MAX_PACKET_BYTES = 32


@dataclass(slots=True)
class HwPacket:
    """Progress record for one packet moving through a buffer.

    Mirrors the state the receiving and transmitting FSMs hold in
    hardware: which slots belong to the packet, how many bytes have been
    written/read, and the contents of the per-packet registers (new header
    and length).  Timing fields feed the Table 1 trace.
    """

    destination: int
    new_header: int
    length: int | None = None
    slots: list[int] = field(default_factory=list)
    bytes_written: int = 0
    bytes_read: int = 0
    slots_released: int = 0
    start_sampled_cycle: int | None = None
    start_driven_cycle: int | None = None
    source_port: int | None = None
    #: Set by the output port at grant time; after this the packet's head
    #: slots start recycling and the packet can no longer be aborted.
    transmit_started: bool = False
    #: A fault was detected after transmission had begun: the packet's
    #: remaining bytes are zero-padding and its contents must not be
    #: trusted (the end-to-end transport will reject and retransmit).
    poisoned: bool = False

    @property
    def length_known(self) -> bool:
        """Whether the length byte has been decoded (transmit gate)."""
        return self.length is not None

    @property
    def fully_written(self) -> bool:
        """Whether every data byte has entered the buffer."""
        return self.length is not None and self.bytes_written >= self.length

    @property
    def fully_read(self) -> bool:
        """Whether every data byte has left the buffer."""
        return self.length is not None and self.bytes_read >= self.length


class DamqBufferHw:
    """One input port's DAMQ buffer at byte granularity.

    Parameters
    ----------
    num_slots:
        Slots in the pool (12 in the ComCoBB chip: 96 static cells per bus
        line at 8 bytes per slot).
    num_ports:
        Ports of the chip (5 for ComCoBB).  One destination list exists
        per port; the list for the buffer's own paired port stays empty by
        construction (no immediate turn-around routing).
    port_id:
        The input port this buffer belongs to.
    """

    def __init__(
        self,
        num_slots: int,
        num_ports: int,
        port_id: int,
        slot_bytes: int = SLOT_BYTES,
    ) -> None:
        if slot_bytes < 1:
            raise ConfigurationError("slots need at least one byte")
        max_packet_slots = -(-MAX_PACKET_BYTES // slot_bytes)
        if num_slots < max_packet_slots:
            raise ConfigurationError(
                f"buffer needs at least {max_packet_slots} slots of "
                f"{slot_bytes} bytes to hold a maximum-size packet"
            )
        self.num_slots = num_slots
        self.num_ports = num_ports
        self.port_id = port_id
        self.slot_bytes = slot_bytes
        self.lists = SlotListManager(num_slots=num_slots, num_lists=num_ports)
        # The "data RAM": slot_bytes dual-ported static cells per slot.
        self.data: list[list[int | None]] = [
            [None] * slot_bytes for _ in range(num_slots)
        ]
        # Per-slot registers (any slot can head a packet).
        self.length_register: list[int | None] = [None] * num_slots
        self.header_register: list[int | None] = [None] * num_slots
        # FSM coordination state: per-destination queues of progress
        # records, and the single-read-port occupancy flag.
        self.queues: list[deque[HwPacket]] = [deque() for _ in range(num_ports)]
        self.reader_active = False

    # ------------------------------------------------------------------
    # Receive side (driven by the input port FSM)
    # ------------------------------------------------------------------

    def begin_packet(
        self, destination: int, new_header: int, source_port: int | None = None
    ) -> HwPacket:
        """Start receiving a packet: claim the free-list head slot.

        Called at router time (cycle 2 of Table 1), before the length is
        known: the first data bytes are already being steered at the slot
        the free-list head register names.
        """
        if destination == self.port_id:
            raise ProtocolError(
                f"port {self.port_id}: a packet may not turn around onto "
                f"its own paired output"
            )
        if not 0 <= destination < self.num_ports:
            raise ConfigurationError(f"destination {destination} out of range")
        slot = self.lists.allocate(destination)
        self.header_register[slot] = new_header
        packet = HwPacket(
            destination=destination,
            new_header=new_header,
            source_port=source_port,
        )
        packet.slots.append(slot)
        self.queues[destination].append(packet)
        return packet

    def set_length(self, packet: HwPacket, length: int) -> None:
        """Latch the decoded length byte (cycle 3, phase 1 of Table 1)."""
        if not 1 <= length <= MAX_PACKET_BYTES:
            raise ProtocolError(f"illegal packet length {length}")
        if packet.length_known:
            raise ProtocolError("length register loaded twice")
        packet.length = length
        self.length_register[packet.slots[0]] = length

    def write_byte(self, packet: HwPacket, byte: int) -> None:
        """Store one data byte, allocating a continuation slot as needed."""
        if not packet.length_known:
            raise ProtocolError("data byte before the length was decoded")
        if packet.fully_written:
            raise ProtocolError("write past the packet's length")
        offset = packet.bytes_written % self.slot_bytes
        if offset == 0 and packet.bytes_written > 0:
            slot = self.lists.allocate(packet.destination)
            packet.slots.append(slot)
        slot = packet.slots[-1]
        self.data[slot][offset] = byte
        packet.bytes_written += 1

    # ------------------------------------------------------------------
    # Transmit side (driven by the output port via the crossbar)
    # ------------------------------------------------------------------

    def head_packet(self, destination: int) -> HwPacket | None:
        """Packet at the head of one destination queue (may be partial)."""
        queue = self.queues[destination]
        return queue[0] if queue else None

    def transmittable(self, destination: int) -> bool:
        """Whether the arbiter may connect this queue to its output.

        Requires a head packet whose length register is loaded (Table 1:
        arbitration is latched in the cycle the length is decoded) and a
        free read port.
        """
        if self.reader_active:
            return False
        packet = self.head_packet(destination)
        return packet is not None and packet.length_known

    def read_byte(self, packet: HwPacket) -> int:
        """Read the next data byte; recycle each slot as it drains.

        Raises :class:`ProtocolError` if the byte has not been written yet
        — in hardware that would be a read/write race the FSM
        synchronization is designed to exclude, so hitting it in
        simulation means the timing model is broken.
        """
        if packet.fully_read:
            raise ProtocolError("read past the packet's length")
        if packet.bytes_read >= packet.bytes_written:
            raise ProtocolError(
                f"read outran write: byte {packet.bytes_read} of a packet "
                f"with {packet.bytes_written} bytes written"
            )
        slot_index = packet.bytes_read // self.slot_bytes
        offset = packet.bytes_read % self.slot_bytes
        slot = packet.slots[slot_index]
        byte = self.data[slot][offset]
        if byte is None:
            raise InvariantError(
                f"slot {slot} cell {offset} read before it was written"
            )
        packet.bytes_read += 1
        is_slot_end = offset == self.slot_bytes - 1 or packet.fully_read
        if is_slot_end and packet.slots_released <= slot_index:
            released = self.lists.release_head(packet.destination)
            if released != slot:
                raise ProtocolError(
                    f"linked list corruption: released slot {released}, "
                    f"expected {slot}"
                )
            self._scrub_slot(slot)
            packet.slots_released = slot_index + 1
        return byte

    def finish_packet(self, packet: HwPacket) -> None:
        """Remove a fully transmitted packet from its queue."""
        queue = self.queues[packet.destination]
        if not queue or queue[0] is not packet:
            raise BufferEmptyError("finished packet is not at queue head")
        if not packet.fully_read:
            raise ProtocolError("finishing a packet before its last byte")
        queue.popleft()

    # ------------------------------------------------------------------
    # Fault handling (graceful degradation)
    # ------------------------------------------------------------------

    def abort_packet(self, packet: HwPacket) -> None:
        """Un-claim a corrupt packet that has not begun transmission.

        The packet is by construction the newest on its destination list
        (packets arrive serially per input port), so its slots are the
        tail run of that list: they are released tail-first and scrubbed,
        and the progress record is dropped from the queue.  Raises
        :class:`ProtocolError` if any byte has already left the buffer —
        such a packet can only be poisoned, not aborted.
        """
        queue = self.queues[packet.destination]
        if not queue or queue[-1] is not packet:
            raise ProtocolError(
                "aborted packet is not the newest on its destination queue"
            )
        if packet.transmit_started or packet.slots_released or packet.bytes_read:
            raise ProtocolError("cannot abort a packet already transmitting")
        queue.pop()
        for expected in reversed(packet.slots):
            released = self.lists.release_tail(packet.destination)
            if released != expected:
                raise InvariantError(
                    f"linked list corruption during abort: released slot "
                    f"{released}, expected {expected}"
                )
            self._scrub_slot(released)
        packet.slots.clear()
        packet.bytes_written = 0

    def pad_packet(self, packet: HwPacket) -> None:
        """Complete a truncated packet with zero filler bytes.

        Used when a fault cuts off a packet whose transmission has
        already started (virtual cut-through): the transmitter is
        mid-stream and must see the declared number of bytes, so the
        controller fabricates the remainder — exactly the garbage a real
        chip would clock out of stale buffer cells.  The packet is marked
        poisoned; the downstream link checksum is regenerated over the
        garbage, so only the end-to-end transport catches it.
        """
        if not packet.length_known:
            raise ProtocolError("cannot pad a packet with no length")
        packet.poisoned = True
        while not packet.fully_written:
            self.write_byte(packet, 0)

    def retire_slot(self, slot: int | None = None) -> int:
        """Take one free slot out of service (hard slot failure).

        Guarded so the buffer can still hold a maximum-size packet —
        retiring below that would wedge the input port forever.
        """
        max_packet_slots = -(-MAX_PACKET_BYTES // self.slot_bytes)
        if self.lists.usable_slots - 1 < max_packet_slots:
            raise FaultError(
                f"retiring would leave fewer than {max_packet_slots} usable "
                f"slots: a maximum-size packet could never be buffered"
            )
        return self.lists.retire_slot(slot)

    def _scrub_slot(self, slot: int) -> None:
        """Clear a recycled slot's cells and registers (debug hygiene)."""
        self.data[slot] = [None] * self.slot_bytes
        self.length_register[slot] = None
        self.header_register[slot] = None

    # ------------------------------------------------------------------
    # Inspection / flow control
    # ------------------------------------------------------------------

    @property
    def free_count(self) -> int:
        """Slots on the free list."""
        return self.lists.free_count

    @property
    def retired_count(self) -> int:
        """Slots taken out of service by the fault model."""
        return self.lists.retired_count

    @property
    def occupancy(self) -> int:
        """Slots in use."""
        return self.lists.occupancy()

    def queue_length(self, destination: int) -> int:
        """Packets queued for one destination (arbitration metric)."""
        return len(self.queues[destination])

    def total_packets(self) -> int:
        """Packets resident in the buffer (any state of progress)."""
        return sum(len(queue) for queue in self.queues)

    def check_invariants(self) -> None:
        """Structural self-check used by the tests.

        Raises :class:`InvariantError` on corruption.
        """
        self.lists.check_invariants()
        for destination, queue in enumerate(self.queues):
            chained = self.lists.slots(destination)
            expected: list[int] = []
            for packet in queue:
                expected.extend(packet.slots[packet.slots_released :])
            if chained != expected:
                raise InvariantError(
                    f"port {self.port_id} list {destination}: slots "
                    f"{chained} != packet records {expected}"
                )
