"""The input synchronizer (Section 3.2.1).

Every byte entering the chip passes through a synchronizer, introducing
"a full clock cycle delay between the signaling of packet arrival ... and
the actual arrival of the header byte".  The model is a one-deep pipeline:
the byte sampled from the wire in cycle ``t`` is released to the router and
buffer in cycle ``t + 1``.
"""

from __future__ import annotations

__all__ = ["Synchronizer"]


class Synchronizer:
    """One-cycle delay element between the wire and the chip internals."""

    def __init__(self) -> None:
        self._pipe: int | None = None

    def tick(self, incoming: int | None) -> int | None:
        """Push this cycle's wire byte in; get last cycle's byte out."""
        released = self._pipe
        self._pipe = incoming
        return released

    def flush(self) -> None:
        """Drop any byte in flight (reset)."""
        self._pipe = None
