"""Host (application processor) adapter on the processor interface.

The fifth port of the ComCoBB chip connects to the local application
processor.  :class:`HostAdapter` plays that processor's role: it feeds the
chip's processor-interface input port with packetized messages and
reassembles the packets emerging from the processor-interface output port.

Message protocol
----------------
The chip itself moves *packets* (1-32 data bytes); messages are a host
convention.  This adapter prefixes each message with a two-byte
little-endian payload length, splits the result into maximal packets (all
32 bytes except possibly the last), and the receiving adapter reassembles
per delivery tag (the final header byte of the circuit) until the declared
length has arrived.  The paper's own framing ("only the last packet of a
message can be less than thirty two bytes") is ambiguous for lengths
divisible by 32, so the length prefix is our documented substitution.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.chip.comcobb import ComCoBBChip, PROCESSOR_PORT
from repro.chip.trace import TraceRecorder
from repro.chip.wires import START, Link, xor_checksum
from repro.errors import ConfigurationError, InvariantError, ProtocolError

__all__ = ["HostAdapter", "ReceivedMessage", "packetize", "LENGTH_PREFIX_BYTES"]

#: Bytes of the little-endian length prefix added to every message.
LENGTH_PREFIX_BYTES = 2

#: Maximum data bytes per packet (Section 3: one to thirty-two).
MAX_PACKET_DATA = 32


def packetize(payload: bytes) -> list[bytes]:
    """Split a length-prefixed payload into maximal packet chunks."""
    if not payload:
        raise ConfigurationError("cannot send an empty message")
    if len(payload) > 0xFFFF:
        raise ConfigurationError("message longer than 65535 bytes")
    framed = len(payload).to_bytes(LENGTH_PREFIX_BYTES, "little") + payload
    return [
        framed[i : i + MAX_PACKET_DATA]
        for i in range(0, len(framed), MAX_PACKET_DATA)
    ]


@dataclass(frozen=True)
class ReceivedMessage:
    """A message delivered to a host, with arrival bookkeeping."""

    delivery_tag: int
    payload: bytes
    completed_cycle: int
    packet_count: int


@dataclass
class _Reassembly:
    """Per-delivery-tag accumulation state."""

    data: bytearray = field(default_factory=bytearray)
    packets: int = 0
    #: Cycle of the most recent packet, for staleness detection: a
    #: reassembly that stops making progress (a packet of its message was
    #: dropped by fault containment) would otherwise absorb the bytes of
    #: every later message on the same tag.
    last_cycle: int = 0

    def declared_length(self) -> int | None:
        if len(self.data) < LENGTH_PREFIX_BYTES:
            return None
        return int.from_bytes(self.data[:LENGTH_PREFIX_BYTES], "little")

    def complete(self) -> bool:
        declared = self.declared_length()
        return (
            declared is not None
            and len(self.data) >= declared + LENGTH_PREFIX_BYTES
        )


class HostAdapter:
    """The application processor attached to one chip."""

    def __init__(self, chip: ComCoBBChip, trace: TraceRecorder | None = None) -> None:
        self.chip = chip
        self.trace = trace
        # Host → chip: drives the processor-interface input port.
        self.inject_link = Link(f"{chip.name}.host->pi")
        chip.input_ports[PROCESSOR_PORT].attach(self.inject_link)
        # Chip → host: samples the processor-interface output port.
        self.deliver_link = Link(f"{chip.name}.pi->host")
        chip.output_ports[PROCESSOR_PORT].attach(self.deliver_link)
        # Outgoing wire symbols (packets already serialized).
        self._symbols: deque[object] = deque()
        # Incoming parse state.
        self._rx_state = "idle"
        self._rx_remaining = 0
        self._rx_tag: int | None = None
        self._rx_bytes: bytearray = bytearray()
        self._rx_checksum = 0
        self._assembling: dict[int, _Reassembly] = {}
        self.received_messages: list[ReceivedMessage] = []
        self.packets_delivered = 0
        self.messages_sent = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send_message(self, circuit_header: int, payload: bytes) -> int:
        """Queue a message for injection on a virtual circuit.

        Returns the number of packets the message occupies.
        """
        chunks = packetize(payload)
        faults = self.chip.faults
        for chunk in chunks:
            self._symbols.append(START)
            self._symbols.append(circuit_header)
            self._symbols.append(len(chunk))
            self._symbols.extend(chunk)
            if faults is not None and faults.checksum:
                self._symbols.append(
                    xor_checksum([circuit_header, len(chunk), *chunk])
                )
        self.messages_sent += 1
        return len(chunks)

    @property
    def sending(self) -> bool:
        """Whether injection traffic is still queued."""
        return bool(self._symbols)

    def drive(self, cycle: int) -> None:
        """Put the next wire symbol on the injection link (one per cycle).

        Respects flow control at packet boundaries: a start bit is only
        driven when the chip's processor-interface buffer has room.
        """
        if not self._symbols:
            return
        symbol = self._symbols[0]
        if symbol is START and self.inject_link.stop:
            return  # hold the whole packet until the buffer drains
        self._symbols.popleft()
        self.inject_link.data.drive(symbol)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    @property
    def _degrading(self) -> bool:
        faults = self.chip.faults
        return faults is not None and faults.degrade

    @property
    def _checksummed(self) -> bool:
        faults = self.chip.faults
        return faults is not None and faults.checksum

    def sample(self, cycle: int) -> None:
        """Parse the delivery wire: start/header/length/data[/checksum]."""
        value = self.deliver_link.data.sample()
        if value is None:
            return
        if value is START:
            if self._rx_state != "idle":
                if self._degrading:
                    # Framing lost mid-packet: drop the partial packet and
                    # resynchronize on this start bit.
                    if self.chip.faults is None:
                        raise InvariantError(
                            f"{self.chip.name}: degrading without a fault policy"
                        )
                    self.chip.faults.counters.resyncs += 1
                    self._record(cycle, "start bit mid-packet; resyncing")
                else:
                    raise ProtocolError(
                        f"{self.chip.name}: start bit mid-packet"
                    )
            self._rx_state = "header"
            self._rx_checksum = 0
            return
        if not isinstance(value, int):
            raise InvariantError(
                f"{self.chip.name}: non-byte symbol {value!r} on delivery wire"
            )
        if self._rx_state == "header":
            self._rx_tag = value
            self._rx_checksum ^= value
            self._rx_state = "length"
        elif self._rx_state == "length":
            self._rx_remaining = value
            self._rx_checksum ^= value
            self._rx_bytes = bytearray()
            self._rx_state = "data"
        elif self._rx_state == "data":
            self._rx_bytes.append(value)
            self._rx_checksum ^= value
            self._rx_remaining -= 1
            if self._rx_remaining == 0:
                if self._checksummed:
                    self._rx_state = "checksum"
                else:
                    self._finish_packet(cycle)
        elif self._rx_state == "checksum":
            if value == self._rx_checksum & 0xFF:
                self._finish_packet(cycle)
                return
            if not self._degrading:
                raise ProtocolError(
                    f"{self.chip.name}: host checksum mismatch (expected "
                    f"{self._rx_checksum & 0xFF}, got {value})"
                )
            if self.chip.faults is None:
                raise InvariantError(
                    f"{self.chip.name}: degrading without a fault policy"
                )
            self.chip.faults.counters.host_checksum_failures += 1
            # The packet is unusable and leaves an unfillable hole in its
            # message, so discard the whole reassembly for this tag: the
            # end-to-end transport will resend the message from scratch.
            if self._rx_tag is not None:
                self._assembling.pop(self._rx_tag, None)
            self._record(
                cycle,
                f"host checksum mismatch (tag {self._rx_tag}); "
                f"packet and reassembly dropped",
            )
            self._rx_state = "idle"
            self._rx_tag = None
        else:
            if self._degrading:
                if self.chip.faults is None:
                    raise InvariantError(
                        f"{self.chip.name}: degrading without a fault policy"
                    )
                self.chip.faults.counters.stray_symbols += 1
                self._record(cycle, f"stray byte {value} ignored (fault)")
                return
            raise ProtocolError(f"{self.chip.name}: byte {value} while idle")

    def _finish_packet(self, cycle: int) -> None:
        if self._rx_tag is None:
            raise InvariantError(
                f"{self.chip.name}: packet finished with no delivery tag"
            )
        self.packets_delivered += 1
        assembly = self._assembling.setdefault(self._rx_tag, _Reassembly())
        assembly.data.extend(self._rx_bytes)
        assembly.packets += 1
        assembly.last_cycle = cycle
        if assembly.complete():
            declared = assembly.declared_length()
            if declared is None:
                raise InvariantError(
                    f"{self.chip.name}: complete reassembly with no length"
                )
            payload = bytes(
                assembly.data[
                    LENGTH_PREFIX_BYTES : LENGTH_PREFIX_BYTES + declared
                ]
            )
            self.received_messages.append(
                ReceivedMessage(
                    delivery_tag=self._rx_tag,
                    payload=payload,
                    completed_cycle=cycle,
                    packet_count=assembly.packets,
                )
            )
            del self._assembling[self._rx_tag]
            if self.trace is not None:
                self.trace.record(
                    cycle,
                    f"{self.chip.name}.host",
                    f"message of {declared} bytes delivered "
                    f"(tag {self._rx_tag})",
                )
        self._rx_state = "idle"
        self._rx_tag = None

    def flush_stale_assemblies(self, cycle: int, max_age: int) -> int:
        """Drop partial reassemblies that stopped making progress.

        A packet dropped by fault containment leaves its message's
        reassembly waiting forever; worse, the stale prefix would absorb
        and misalign every later message on the same delivery tag.  The
        end-to-end transport calls this between retransmissions so a
        resent message starts from a clean slate.  Returns the number of
        reassemblies flushed.
        """
        stale = [
            tag
            for tag, assembly in self._assembling.items()
            if cycle - assembly.last_cycle > max_age
        ]
        for tag in stale:
            del self._assembling[tag]
            if self.chip.faults is not None:
                self.chip.faults.counters.stale_assemblies_flushed += 1
            self._record(cycle, f"stale reassembly flushed (tag {tag})")
        return len(stale)

    def _record(self, cycle: int, action: str) -> None:
        if self.trace is not None:
            self.trace.record(cycle, f"{self.chip.name}.host", action)

    def end_cycle(self) -> None:
        """Clear the adapter's wires at the cycle boundary."""
        self.inject_link.end_cycle()
        self.deliver_link.end_cycle()
