"""Cycle-accurate model of the ComCoBB DAMQ micro-architecture (Sec. 3)."""

from repro.chip.arbiter import ChipArbiter
from repro.chip.area import (
    SlotSizeEstimate,
    estimate_slot_size,
    slot_size_sweep,
    uniform_length_distribution,
)
from repro.chip.comcobb import (
    DEFAULT_SLOTS,
    NUM_PORTS,
    PROCESSOR_PORT,
    ComCoBBChip,
)
from repro.chip.degrade import ChipFaultPolicy, FaultCounters
from repro.chip.host import (
    HostAdapter,
    LENGTH_PREFIX_BYTES,
    ReceivedMessage,
    packetize,
)
from repro.chip.input_port import DEFAULT_STOP_THRESHOLD, InputPort
from repro.chip.network import ChipNetwork, Circuit, Node
from repro.chip.output_port import OutputPort
from repro.chip.router import CircuitRouter, RouteEntry
from repro.chip.slots import SLOT_BYTES, DamqBufferHw, HwPacket
from repro.chip.synchronizer import Synchronizer
from repro.chip.topologies import (
    TopologyBuilder,
    build_chain,
    build_complete,
    build_mesh,
    build_ring,
    build_star,
    open_shortest_circuit,
    shortest_path,
)
from repro.chip.trace import TraceEvent, TraceRecorder
from repro.chip.wires import START, Link, Wire, xor_checksum

__all__ = [
    "ChipArbiter",
    "ChipFaultPolicy",
    "ChipNetwork",
    "Circuit",
    "CircuitRouter",
    "ComCoBBChip",
    "FaultCounters",
    "DEFAULT_SLOTS",
    "DEFAULT_STOP_THRESHOLD",
    "DamqBufferHw",
    "HostAdapter",
    "HwPacket",
    "InputPort",
    "LENGTH_PREFIX_BYTES",
    "Link",
    "NUM_PORTS",
    "Node",
    "OutputPort",
    "PROCESSOR_PORT",
    "ReceivedMessage",
    "RouteEntry",
    "SLOT_BYTES",
    "START",
    "SlotSizeEstimate",
    "Synchronizer",
    "TopologyBuilder",
    "build_chain",
    "build_complete",
    "build_mesh",
    "build_ring",
    "build_star",
    "estimate_slot_size",
    "open_shortest_circuit",
    "shortest_path",
    "slot_size_sweep",
    "uniform_length_distribution",
    "TraceEvent",
    "TraceRecorder",
    "Wire",
    "packetize",
    "xor_checksum",
]
