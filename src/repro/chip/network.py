"""Multicomputer networks of ComCoBB chips connected by point-to-point links.

Each node is a :class:`ComCoBBChip` plus its :class:`HostAdapter`.
Neighbouring nodes are joined by a pair of unidirectional links (the
paper's "two unidirectional links between each pair of neighboring
processing nodes"), and messages travel over virtual circuits programmed
into the per-input-port routing tables along a path of nodes.

The network owns the global clock: each :meth:`tick` runs the five chip
phases in an order that makes every wire synchronous —

1. hosts and output ports **drive** their wires,
2. input ports and hosts **sample** them,
3. arbiters make new crossbar grants,
4. output ports **latch** next cycle's byte,
5. input ports refresh **flow control**, wires clear.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chip.comcobb import NUM_PORTS, PROCESSOR_PORT, ComCoBBChip
from repro.chip.degrade import ChipFaultPolicy
from repro.chip.host import HostAdapter
from repro.chip.trace import TraceRecorder
from repro.chip.wires import Link
from repro.errors import ConfigurationError, RoutingError, SimulationError

__all__ = ["Node", "Circuit", "ChipNetwork"]


@dataclass
class Node:
    """One processing node: chip + application processor."""

    name: str
    chip: ComCoBBChip
    host: HostAdapter


@dataclass(frozen=True)
class Circuit:
    """A programmed virtual circuit, ready for messages.

    ``header`` is the byte the source host puts on each packet;
    ``delivery_tag`` is the byte the destination host sees.
    """

    source: str
    destination: str
    header: int
    delivery_tag: int
    hops: tuple[str, ...]


class ChipNetwork:
    """A set of nodes, their links, and the global clock."""

    def __init__(
        self,
        num_slots: int = 12,
        stop_threshold: int | None = None,
        trace: TraceRecorder | None = None,
        slot_bytes: int = 8,
        faults: ChipFaultPolicy | None = None,
    ) -> None:
        self.trace = trace
        self.num_slots = num_slots
        self.stop_threshold = stop_threshold
        self.slot_bytes = slot_bytes
        self.faults = faults
        self.nodes: dict[str, Node] = {}
        self._links: list[Link] = []
        # adjacency[(node, port)] = (neighbour node, neighbour port)
        self._adjacency: dict[tuple[str, int], tuple[str, int]] = {}
        # Host-facing delivery tags must be unique per *destination node*
        # (circuits may enter the final chip via different input ports,
        # whose router tables allocate headers independently).
        self._next_delivery_tag: dict[str, int] = {}
        self.cycle = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, name: str) -> Node:
        """Create a node (chip + host adapter)."""
        if name in self.nodes:
            raise ConfigurationError(f"duplicate node name {name!r}")
        kwargs = {}
        if self.stop_threshold is not None:
            kwargs["stop_threshold"] = self.stop_threshold
        chip = ComCoBBChip(
            name,
            num_slots=self.num_slots,
            trace=self.trace,
            slot_bytes=self.slot_bytes,
            faults=self.faults,
            **kwargs,
        )
        host = HostAdapter(chip, self.trace)
        node = Node(name, chip, host)
        self.nodes[name] = node
        return node

    def connect(self, name_a: str, port_a: int, name_b: str, port_b: int) -> None:
        """Join two nodes with a pair of unidirectional links."""
        for name, port in ((name_a, port_a), (name_b, port_b)):
            if name not in self.nodes:
                raise ConfigurationError(f"unknown node {name!r}")
            if not 0 <= port < NUM_PORTS or port == PROCESSOR_PORT:
                raise ConfigurationError(
                    f"port {port} is not a network port (0-3)"
                )
            if (name, port) in self._adjacency:
                raise ConfigurationError(f"port {port} of {name!r} already wired")
        node_a = self.nodes[name_a]
        node_b = self.nodes[name_b]
        forward = Link(f"{name_a}.out{port_a}->{name_b}.in{port_b}")
        backward = Link(f"{name_b}.out{port_b}->{name_a}.in{port_a}")
        node_a.chip.output_ports[port_a].attach(forward)
        node_b.chip.input_ports[port_b].attach(forward)
        node_b.chip.output_ports[port_b].attach(backward)
        node_a.chip.input_ports[port_a].attach(backward)
        self._links.extend([forward, backward])
        self._adjacency[(name_a, port_a)] = (name_b, port_b)
        self._adjacency[(name_b, port_b)] = (name_a, port_a)

    def links(self, include_host_links: bool = True) -> list[Link]:
        """Every link in the network, in deterministic construction order.

        Inter-chip links first, then each node's host injection and
        delivery links.  The fault injector uses this to attach its wire
        corruption hooks.
        """
        links = list(self._links)
        if include_host_links:
            for node in self.nodes.values():
                links.append(node.host.inject_link)
                links.append(node.host.deliver_link)
        return links

    def _port_towards(self, name: str, neighbour: str) -> tuple[int, int]:
        """The (local output port, neighbour input port) pair linking two
        adjacent nodes."""
        for (node, port), (other, other_port) in self._adjacency.items():
            if node == name and other == neighbour:
                return port, other_port
        raise RoutingError(f"{name!r} and {neighbour!r} are not adjacent")

    # ------------------------------------------------------------------
    # Virtual circuits
    # ------------------------------------------------------------------

    def open_circuit(self, path: list[str]) -> Circuit:
        """Program a virtual circuit along a path of adjacent nodes.

        The path starts at the sending node and ends at the receiving
        node.  Headers are allocated hop by hop: the source host's header
        indexes the processor-interface router of the first chip; each
        intermediate chip's input router relabels the packet; the last
        chip routes it to its processor interface under a fresh delivery
        tag.
        """
        if len(path) < 2:
            raise ConfigurationError("a circuit needs at least two nodes")
        for name in path:
            if name not in self.nodes:
                raise ConfigurationError(f"unknown node {name!r}")
        # Entry router of each hop: processor interface at the source,
        # then the input port each inter-node link lands on.
        hops: list[tuple[str, int, int]] = []  # (node, entry port, out port)
        entry_port = PROCESSOR_PORT
        for here, there in zip(path[:-1], path[1:]):
            out_port, next_entry = self._port_towards(here, there)
            hops.append((here, entry_port, out_port))
            entry_port = next_entry
        hops.append((path[-1], entry_port, PROCESSOR_PORT))

        # Allocate a header for every router on the path, then program
        # each router to relabel to the next hop's header.
        headers = [
            self.nodes[name].chip.routers[entry].free_header()
            for name, entry, _out in hops
        ]
        destination = path[-1]
        delivery_tag = self._next_delivery_tag.get(destination, 0)
        if delivery_tag > 255:
            raise RoutingError(
                f"node {destination!r} has no free delivery tags"
            )
        self._next_delivery_tag[destination] = delivery_tag + 1
        for index, (name, entry, out_port) in enumerate(hops):
            new_header = (
                headers[index + 1] if index + 1 < len(hops) else delivery_tag
            )
            self.nodes[name].chip.routers[entry].program(
                headers[index], out_port, new_header
            )
        return Circuit(
            source=path[0],
            destination=path[-1],
            header=headers[0],
            delivery_tag=delivery_tag,
            hops=tuple(path),
        )

    def send(self, circuit: Circuit, payload: bytes) -> int:
        """Queue a message at the circuit's source host."""
        return self.nodes[circuit.source].host.send_message(
            circuit.header, payload
        )

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Advance the whole network by one clock cycle."""
        cycle = self.cycle
        for node in self.nodes.values():
            node.host.drive(cycle)
            node.chip.drive(cycle)
        for node in self.nodes.values():
            node.chip.sample(cycle)
            node.host.sample(cycle)
        for node in self.nodes.values():
            node.chip.arbitrate(cycle)
        for node in self.nodes.values():
            node.chip.latch(cycle)
        for node in self.nodes.values():
            node.chip.update_flow_control()
            node.host.end_cycle()
        for link in self._links:
            link.end_cycle()
        self.cycle += 1

    def run(self, cycles: int) -> None:
        """Advance a fixed number of cycles."""
        for _ in range(cycles):
            self.tick()

    @property
    def busy(self) -> bool:
        """Whether any host is injecting or any chip holds packets."""
        return any(
            node.host.sending or node.chip.busy for node in self.nodes.values()
        )

    def run_until_idle(self, max_cycles: int = 100_000) -> int:
        """Run until all traffic drains; return cycles consumed."""
        start = self.cycle
        # A few grace cycles let wire-latched bytes land after chips go idle.
        grace = 8
        idle_cycles = 0
        while idle_cycles < grace:
            if self.cycle - start > max_cycles:
                raise SimulationError(
                    f"network did not drain within {max_cycles} cycles"
                )
            self.tick()
            idle_cycles = 0 if self.busy else idle_cycles + 1
        return self.cycle - start

    def check_invariants(self) -> None:
        """Run every chip's structural self-check."""
        for node in self.nodes.values():
            node.chip.check_invariants()
