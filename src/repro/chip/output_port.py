"""Output port: the transmit pipeline of Section 3.2.2.

An output port granted a (buffer, packet) connection streams the packet
onto its link at one byte per cycle: start bit, new header byte, length
byte, then the data bytes read out of the buffer slots.  The port latches
the next value in one cycle (the crossbar transfer) and drives it on the
wire in the next — this one-cycle pipeline, combined with the input side's
synchronizer delay, is what yields the four-cycle cut-through turnaround
of Table 1.

The latch step reads buffer bytes through :meth:`DamqBufferHw.read_byte`,
which recycles each slot as its last byte leaves — so by the time a long
packet's tail is still arriving, its head slots are already back on the
free list, exactly as in the hardware.
"""

from __future__ import annotations

import enum

from repro.chip.degrade import ChipFaultPolicy
from repro.chip.slots import DamqBufferHw, HwPacket
from repro.chip.trace import TraceRecorder
from repro.chip.wires import START, Link
from repro.errors import InvariantError, ProtocolError

__all__ = ["OutputPort"]


class _SendState(enum.Enum):
    """What the port will latch next."""

    IDLE = "idle"
    HEADER = "header"  # start bit already pending
    LENGTH = "length"
    DATA = "data"
    CHECKSUM = "checksum"  # link checksum byte (fault policy only)
    FINISHING = "finishing"  # last byte pending on the latch


class OutputPort:
    """One of the chip's transmit datapaths."""

    def __init__(
        self,
        port_id: int,
        chip_name: str,
        trace: TraceRecorder | None = None,
        faults: ChipFaultPolicy | None = None,
    ) -> None:
        self.port_id = port_id
        self.chip_name = chip_name
        self.trace = trace
        self.faults = faults
        self.link: Link | None = None
        self._state = _SendState.IDLE
        self._pending: object = None
        self._pending_is_start = False
        self._buffer: DamqBufferHw | None = None
        self._packet: HwPacket | None = None
        self._checksum = 0
        self.packets_sent = 0

    @property
    def name(self) -> str:
        """Trace label."""
        return f"{self.chip_name}.out{self.port_id}"

    def attach(self, link: Link) -> None:
        """Connect the outgoing link."""
        self.link = link

    @property
    def busy(self) -> bool:
        """Whether the port is mid-packet (not grantable)."""
        return self._state is not _SendState.IDLE or self._pending is not None

    @property
    def downstream_stopped(self) -> bool:
        """Whether the receiver at the far end asserted flow control."""
        return self.link is not None and self.link.stop

    # ------------------------------------------------------------------
    # Arbiter interface
    # ------------------------------------------------------------------

    def grant(self, buffer: DamqBufferHw, packet: HwPacket, cycle: int) -> None:
        """Connect this port to a buffer queue (crossbar grant)."""
        if self.busy:
            raise ProtocolError(f"{self.name}: granted while busy")
        if buffer.reader_active:
            raise ProtocolError(
                f"{self.name}: buffer of input {buffer.port_id} already "
                f"has a reader"
            )
        self._buffer = buffer
        self._packet = packet
        packet.transmit_started = True
        buffer.reader_active = True
        self._state = _SendState.HEADER
        self._pending = START
        self._pending_is_start = True
        self._checksum = 0
        self._record(cycle, f"granted buffer of input {buffer.port_id}")

    # ------------------------------------------------------------------
    # Per-cycle behaviour
    # ------------------------------------------------------------------

    def drive(self, cycle: int) -> None:
        """Put the latched value on the wire (phase 0 of the cycle)."""
        if self._pending is None or self.link is None:
            return
        self.link.data.drive(self._pending)
        if self._pending_is_start:
            if self._packet is None:
                raise InvariantError(f"{self.name}: start bit pending with no packet")
            self._packet.start_driven_cycle = cycle
            self._record(cycle, "start bit driven")
            self._pending_is_start = False
        self._pending = None
        if self._state is _SendState.FINISHING:
            self._disconnect(cycle)

    def latch(self, cycle: int) -> None:
        """Prepare next cycle's wire value (the crossbar transfer)."""
        if self._state in (_SendState.IDLE, _SendState.FINISHING):
            return
        if self._pending is not None:
            # A value is already latched and not yet driven — this happens
            # only in the grant cycle, whose latch slot was used for the
            # start bit.
            return
        if self._packet is None or self._buffer is None:
            raise InvariantError(f"{self.name}: mid-packet state with no connection")
        checksummed = self.faults is not None and self.faults.checksum
        if self._state is _SendState.HEADER:
            self._pending = self._packet.new_header
            self._checksum = self._packet.new_header
            self._state = _SendState.LENGTH
            self._record(
                cycle, f"header {self._packet.new_header} latched from crossbar"
            )
        elif self._state is _SendState.LENGTH:
            if not self._packet.length_known:
                raise ProtocolError(f"{self.name}: length not ready")
            self._pending = self._packet.length
            self._checksum ^= self._packet.length
            self._state = _SendState.DATA
            self._record(
                cycle, f"length {self._packet.length} loaded into read counter"
            )
        elif self._state is _SendState.DATA:
            if (
                self.faults is not None
                and self.faults.degrade
                and self._packet.bytes_read >= self._packet.bytes_written
            ):
                # Read underrun: the writer stalled mid-packet (a length
                # byte corrupted upward makes the read counter expect
                # bytes the sender will never produce).  A real chip
                # would clock out stale buffer cells; fabricate the
                # remainder and let the end-to-end transport recover.
                self._buffer.pad_packet(self._packet)
                self.faults.counters.read_underruns += 1
                self._record(cycle, "read underrun; packet padded")
            byte = self._buffer.read_byte(self._packet)
            self._pending = byte
            self._checksum ^= byte
            if self._packet.fully_read:
                if checksummed:
                    self._state = _SendState.CHECKSUM
                else:
                    self._state = _SendState.FINISHING
                self._record(cycle, "read counter reached zero (EOP)")
        elif self._state is _SendState.CHECKSUM:
            # Regenerated per hop: the checksum protects this link only.
            self._pending = self._checksum & 0xFF
            self._state = _SendState.FINISHING
            self._record(cycle, f"checksum {self._checksum & 0xFF} appended")

    def _disconnect(self, cycle: int) -> None:
        """Tear down the crossbar connection after the final byte."""
        if self._buffer is None or self._packet is None:
            raise InvariantError(f"{self.name}: disconnect with no connection")
        self._buffer.finish_packet(self._packet)
        self._buffer.reader_active = False
        self._record(
            cycle,
            f"packet for output {self.port_id} complete "
            f"(turnaround {self._turnaround()} cycles)",
        )
        self.packets_sent += 1
        self._buffer = None
        self._packet = None
        self._state = _SendState.IDLE

    def _turnaround(self) -> object:
        if self._packet is None:
            raise InvariantError(f"{self.name}: turnaround queried with no packet")
        if (
            self._packet.start_sampled_cycle is None
            or self._packet.start_driven_cycle is None
        ):
            return "?"
        return self._packet.start_driven_cycle - self._packet.start_sampled_cycle

    def _record(self, cycle: int, action: str) -> None:
        if self.trace is not None:
            self.trace.record(cycle, self.name, action)
