"""Wire-level signalling between chips (and between chip and host).

The ComCoBB links are eight data wires clocked at one byte per cycle, with
a start bit announcing each packet one cycle ahead of its header byte
(Section 3.2).  :class:`Wire` models one unidirectional byte lane: in every
clock cycle it carries either nothing, a start bit, or one byte.  A
:class:`Link` couples a data wire with the reverse *stop* line used for
flow control (the "buffer full" notification of Section 2).

The global tick order (see :mod:`repro.chip.network`) guarantees drivers
run before samplers within a cycle, so a wire's value is what its driver
put on it in the same cycle — exactly like a synchronous bus.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.errors import ProtocolError

__all__ = ["START", "Wire", "Link", "xor_checksum"]


def xor_checksum(values: Iterable[int]) -> int:
    """Checksum byte of the ComCoBB wire protocol: XOR of all bytes.

    Covers the header, length and data bytes of one packet on one link
    (the start bit carries no data and is excluded).  Each hop strips and
    regenerates the byte, so the checksum protects exactly one wire
    crossing — end-to-end integrity is the host transport's job.
    """
    checksum = 0
    for value in values:
        checksum ^= value
    return checksum & 0xFF


class _StartBit:
    """Singleton marker for the start bit occupying one wire cycle."""

    def __repr__(self) -> str:
        return "START"


#: The start-bit symbol; compare with ``is``.
START = _StartBit()

#: Type carried by a wire in one cycle.
WireValue = object  # None | START | int in [0, 255]


class Wire:
    """One unidirectional byte lane, valid for a single clock cycle.

    ``fault`` is the fault-injection hook: when set (by
    :class:`repro.faults.FaultInjector`), every *byte* driven onto the
    wire passes through it and may come back corrupted — modelling bit
    flips and stuck-at wires.  Start bits and idle cycles are never
    corrupted (the start line is a separate, assumed-good wire).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._value: WireValue = None
        self._driven = False
        self.fault: Callable[[str, int], int] | None = None

    def drive(self, value: WireValue) -> None:
        """Put a value on the wire for this cycle (at most one driver)."""
        if self._driven:
            raise ProtocolError(f"wire {self.name!r} driven twice in one cycle")
        if value is not None and value is not START:
            if not isinstance(value, int) or not 0 <= value <= 255:
                raise ProtocolError(
                    f"wire {self.name!r} can only carry bytes, got {value!r}"
                )
            if self.fault is not None:
                value = self.fault(self.name, value)
        self._value = value
        self._driven = value is not None

    def sample(self) -> WireValue:
        """Read the wire's value for this cycle."""
        return self._value

    def end_cycle(self) -> None:
        """Return the wire to the idle state at the cycle boundary."""
        self._value = None
        self._driven = False


class Link:
    """A data wire plus the reverse stop line.

    ``stop`` is a level signal driven by the receiving input port when its
    buffer is low on free slots; the sending output port samples it before
    starting a *new* packet (a packet in flight always completes — the
    receiver's threshold reserves space for it).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.data = Wire(f"{name}.data")
        self.stop = False

    def end_cycle(self) -> None:
        """Clear the data wire at the cycle boundary (stop is a level)."""
        self.data.end_cycle()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Link({self.name!r}, stop={self.stop})"
