"""Cycle-accurate trace recording for the chip model.

The Table 1 reproduction needs a readable, cycle-by-cycle account of what
each component does while a packet cuts through a chip.  Components call
:meth:`TraceRecorder.record` when a recorder is attached; experiments
render the collected events as the table's Cycle/Action rows.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded action of one component at one clock cycle."""

    cycle: int
    component: str
    action: str

    def render(self) -> str:
        """Human-readable single line."""
        return f"cycle {self.cycle:4d}  {self.component:24s} {self.action}"


class TraceRecorder:
    """Accumulates :class:`TraceEvent` records in simulation order."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(self, cycle: int, component: str, action: str) -> None:
        """Append one event."""
        self.events.append(TraceEvent(cycle, component, action))

    def filter(
        self, component: str | None = None, contains: str | None = None
    ) -> list[TraceEvent]:
        """Events matching a component prefix and/or action substring."""
        selected = self.events
        if component is not None:
            selected = [
                event
                for event in selected
                if event.component.startswith(component)
            ]
        if contains is not None:
            selected = [event for event in selected if contains in event.action]
        return selected

    def render(self) -> str:
        """The whole trace, one event per line."""
        return "\n".join(event.render() for event in self.events)

    def clear(self) -> None:
        """Forget all recorded events."""
        self.events.clear()
