"""Reproduction of Tamir & Frazier, *High-Performance Multi-Queue Buffers
for VLSI Communication Switches* (ISCA 1988).

Public API highlights
---------------------
* :mod:`repro.core` — the DAMQ buffer and its FIFO/SAMQ/SAFC baselines.
* :mod:`repro.switch` — n×n switches, crossbar arbiters, flow control.
* :mod:`repro.network` — the 64×64 Omega-network evaluation substrate.
* :mod:`repro.markov` — exact Markov analysis of 2×2 discarding switches.
* :mod:`repro.chip` — cycle-accurate ComCoBB DAMQ micro-architecture.
* :mod:`repro.experiments` — regenerates every table and figure.
"""

from repro.core import (
    DamqBuffer,
    FifoBuffer,
    Message,
    Packet,
    PacketFactory,
    SafcBuffer,
    SamqBuffer,
    SlotListManager,
    SwitchBuffer,
    make_buffer,
)
from repro.errors import (
    BufferEmptyError,
    BufferFullError,
    ConfigurationError,
    FaultError,
    InvariantError,
    ProtocolError,
    ReproError,
    RoutingError,
    SimulationError,
)
from repro.network import (
    NetworkConfig,
    OmegaNetworkSimulator,
    OmegaTopology,
    latency_throughput_curve,
    measure_saturation,
    simulate,
)
from repro.switch import CrossbarArbiter, Protocol, Switch, make_arbiter

__version__ = "1.0.0"

__all__ = [
    "BufferEmptyError",
    "BufferFullError",
    "ConfigurationError",
    "CrossbarArbiter",
    "DamqBuffer",
    "FaultError",
    "FifoBuffer",
    "InvariantError",
    "Message",
    "NetworkConfig",
    "OmegaNetworkSimulator",
    "OmegaTopology",
    "Packet",
    "PacketFactory",
    "Protocol",
    "ProtocolError",
    "ReproError",
    "RoutingError",
    "SafcBuffer",
    "SamqBuffer",
    "SimulationError",
    "SlotListManager",
    "Switch",
    "SwitchBuffer",
    "__version__",
    "latency_throughput_curve",
    "make_arbiter",
    "make_buffer",
    "measure_saturation",
    "simulate",
]
