"""DAMQ with per-output reserved slots (arXiv 0910.1852 scheme).

Plain DAMQ shares every slot dynamically, which is exactly what makes it
vulnerable to a single hot output: one congested queue can absorb the
whole buffer and starve every other output (the bounded model checker
exhibits a minimal trace — see the ``starvation`` property in
``repro.analysis.model``).  The NoC remedy is to *reserve* a small quota
of slots per output and share only the residual pool:

* each output is guaranteed ``reserved`` slots it can always fill;
* slot demand beyond the quota draws from a shared pool of
  ``capacity - num_outputs * reserved`` slots, preserving DAMQ's
  dynamic-sharing win under balanced traffic.

The implementation keeps :class:`~repro.core.damq.DamqBuffer`'s
hardware-faithful linked-list slot storage untouched (the pointer RAM,
free list and retirement machinery are inherited) and adds one register,
``_shared_used`` — the number of occupied slots charged to the shared
pool — maintained incrementally on push/pop exactly as a hardware
occupancy counter would be.

Accounting (all in slots; a size-``s`` packet occupies ``s`` slots):

``used(o)``
    slots held by output ``o`` = ``self._lists.length(o)``.
``shared_used``
    ``sum(max(0, used(o) - reserved) for o)``.
``shared_capacity``
    ``capacity - num_outputs * reserved - retired_count``.  Retired
    (faulted) slots are charged to the shared pool so the per-output
    guarantee survives slot retirement; retirement is refused once the
    pool is exhausted.

A push of size ``s`` to output ``o`` is accepted iff the *increase* in
shared usage fits the pool.  Because total occupancy is
``sum(used) <= num_outputs * reserved + shared_used``, acceptance implies
enough free slots exist in the underlying free list — the reservation
check is strictly stronger than DAMQ's own, so the inherited ``push``
never raises once the check passes.
"""

from __future__ import annotations

from typing import Any

from repro.core.damq import DamqBuffer
from repro.core.packet import Packet
from repro.errors import (
    BufferFullError,
    ConfigurationError,
    FaultError,
    InvariantError,
)

__all__ = ["DamqReservedBuffer"]


class DamqReservedBuffer(DamqBuffer):
    """Dynamically-allocated multi-queue buffer with per-output reservations.

    Parameters
    ----------
    capacity:
        Total slots, shared plus reserved.
    num_outputs:
        Output ports; each gets a ``reserved`` slot quota.
    reserved:
        Slots guaranteed per output (default 1, the scheme's minimum —
        enough to cure single-hot-output starvation).
    """

    kind = "DAMQ-RSV"

    def __init__(self, capacity: int, num_outputs: int, reserved: int = 1) -> None:
        if reserved < 1:
            raise ConfigurationError(
                f"reserved quota must be at least 1 slot, got {reserved}"
            )
        if capacity < num_outputs * reserved:
            raise ConfigurationError(
                f"capacity {capacity} cannot reserve {reserved} slot(s) for "
                f"each of {num_outputs} outputs"
            )
        super().__init__(capacity, num_outputs)
        self.reserved = reserved
        # Occupied slots charged to the shared pool (beyond each output's
        # quota), maintained incrementally on push/pop.
        self._shared_used = 0

    # ------------------------------------------------------------------
    # Reservation accounting
    # ------------------------------------------------------------------

    @property
    def shared_capacity(self) -> int:
        """Slots in the shared pool (total minus quotas minus retired)."""
        return self.capacity - self.num_outputs * self.reserved - self.retired_count

    @property
    def shared_used(self) -> int:
        """Occupied slots currently charged to the shared pool."""
        return self._shared_used

    def _shared_delta(self, destination: int, size: int) -> int:
        """Extra shared-pool slots a size-``size`` push to ``destination`` needs."""
        used = self._lists.length(destination)
        quota = self.reserved
        return max(0, used + size - quota) - max(0, used - quota)

    # ------------------------------------------------------------------
    # SwitchBuffer interface (deltas over DamqBuffer)
    # ------------------------------------------------------------------

    def can_accept(self, destination: int, size: int = 1) -> bool:
        if not 0 <= destination < self.num_outputs:
            self._check_output(destination)
        return (
            self._shared_used + self._shared_delta(destination, size)
            <= self.shared_capacity
        )

    def push(self, packet: Packet, destination: int) -> None:
        # Check the reservation rule before any mutation: a rejected push
        # must leave the buffer byte-identical (the model checker probes
        # this), and the inherited DAMQ push would otherwise accept any
        # packet that fits the raw free list.
        if not 0 <= destination < self.num_outputs:
            self._check_output(destination)
        delta = self._shared_delta(destination, packet.size)
        if self._shared_used + delta > self.shared_capacity:
            raise BufferFullError(
                f"{self.kind} shared pool full "
                f"({self._shared_used}/{self.shared_capacity} shared slots "
                f"used; output {destination} is past its {self.reserved}-slot "
                f"reservation)"
            )
        super().push(packet, destination)
        self._shared_used += delta

    def pop(self, destination: int) -> Packet:
        used_before = self._lists.length(destination)
        packet = super().pop(destination)
        used_after = used_before - packet.size
        quota = self.reserved
        self._shared_used -= max(0, used_before - quota) - max(0, used_after - quota)
        return packet

    def retire_slot(self) -> None:
        """Retire one free slot, charging it to the shared pool.

        Refuses (``FaultError``) when the shared pool has no spare slot:
        retiring then would eat into some output's reservation and void
        the no-starvation guarantee.  When the check passes, the pool
        also guarantees the inherited free-list preconditions (a free
        slot exists and more than one usable slot remains).
        """
        if self.shared_capacity - self._shared_used < 1:
            raise FaultError(
                f"{self.kind} cannot retire a slot: the shared pool "
                f"({self._shared_used}/{self.shared_capacity} used) has no "
                f"spare slot, and retiring would break an output's "
                f"{self.reserved}-slot reservation"
            )
        super().retire_slot()

    # ------------------------------------------------------------------
    # Checkpoint serialization
    # ------------------------------------------------------------------

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        quota = self.reserved
        self._shared_used = sum(
            max(0, self._lists.length(out) - quota)
            for out in range(self.num_outputs)
        )

    # ------------------------------------------------------------------
    # Structural invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        super().check_invariants()
        quota = self.reserved
        expected = sum(
            max(0, self._lists.length(out) - quota)
            for out in range(self.num_outputs)
        )
        if self._shared_used != expected:
            raise InvariantError(
                f"{self.kind} shared-pool register drifted: "
                f"{self._shared_used} != recomputed {expected}"
            )
        if self._shared_used > self.shared_capacity:
            raise InvariantError(
                f"{self.kind} shared pool overcommitted: "
                f"{self._shared_used} > {self.shared_capacity}"
            )
