"""The architecture zoo: switch designs from the paper's descendants.

The paper's DAMQ line continued for decades; this package reproduces
three successors on top of the existing rails (simulator, faults,
sanitizer, telemetry, checkpoints, model checker):

* :class:`~repro.arch.crosspoint.CrosspointBuffer` ("CQ") — dedicated
  per-crosspoint FIFOs (arXiv 1403.2098), paired with the per-output
  :class:`~repro.arch.schedulers.CrosspointScheduler` (longest queue
  first, or round robin).
* :class:`~repro.arch.damq_reserved.DamqReservedBuffer` ("DAMQ-RSV") —
  DAMQ with per-output reserved slots (arXiv 0910.1852), curing DAMQ's
  single-hot-output starvation while keeping dynamic sharing of the
  residual pool.
* :class:`~repro.arch.schedulers.IterativeScheduler` ("islip1",
  "islip2"/"islip", "islip4") — distributed request–grant–accept
  matching (arXiv 1112.4214 lineage) replacing the central arbiter.

Importing this package registers the buffers in
:data:`repro.core.registry.BUFFER_TYPES` and the schedulers in
:data:`repro.switch.scheduler.SCHEDULER_TYPES`; both registries also
import it lazily on a lookup miss, so naming an architecture anywhere
("CQ" in a :class:`~repro.network.simulator.NetworkConfig`, "lqf" as an
arbiter kind) just works.  Registration is idempotent.
"""

from __future__ import annotations

from repro.arch.crosspoint import CrosspointBuffer
from repro.arch.damq_reserved import DamqReservedBuffer
from repro.arch.schedulers import CrosspointScheduler, IterativeScheduler
from repro.core.registry import register_buffer_type
from repro.switch.scheduler import (
    Scheduler,
    SchedulerFactory,
    register_scheduler,
)

__all__ = [
    "ARCH_ORDER",
    "ARCH_SCHEDULERS",
    "CrosspointBuffer",
    "CrosspointScheduler",
    "DamqReservedBuffer",
    "IterativeScheduler",
]

#: Report/sweep order for the zoo's buffers (appended after PAPER_ORDER).
ARCH_ORDER = ("DAMQ-RSV", "CQ")

#: Scheduler kinds this package registers.
ARCH_SCHEDULERS = ("lqf", "rr", "islip", "islip1", "islip2", "islip4")


def _make_lqf(num_inputs: int, num_outputs: int) -> Scheduler:
    return CrosspointScheduler(num_inputs, num_outputs, policy="lqf")


def _make_rr(num_inputs: int, num_outputs: int) -> Scheduler:
    return CrosspointScheduler(num_inputs, num_outputs, policy="rr")


def _make_islip(iterations: int) -> SchedulerFactory:
    def factory(num_inputs: int, num_outputs: int) -> Scheduler:
        return IterativeScheduler(num_inputs, num_outputs, iterations=iterations)

    return factory


register_buffer_type("DAMQ-RSV", DamqReservedBuffer)
register_buffer_type("CQ", CrosspointBuffer)
register_scheduler("lqf", _make_lqf)
register_scheduler("rr", _make_rr)
register_scheduler("islip", _make_islip(2))
register_scheduler("islip1", _make_islip(1))
register_scheduler("islip2", _make_islip(2))
register_scheduler("islip4", _make_islip(4))
