"""Crosspoint-queued (CQ) buffering (arXiv 1403.2098 lineage).

A crosspoint-queued switch places a small dedicated buffer at every
crosspoint of the fabric: input ``i`` sees one private FIFO per output
``o``, with no sharing between crosspoints and no speedup requirement on
any single memory.  Mapped onto this library's per-input
:class:`~repro.core.buffer.SwitchBuffer` model, one ``CrosspointBuffer``
is the row of crosspoints belonging to one input: ``num_outputs``
independent FIFOs of ``capacity / num_outputs`` slots each, every one of
them readable in the same cycle (each crosspoint has its own read port,
so ``max_reads_per_cycle == num_outputs``, like SAFC).

Structurally this resembles SAMQ-with-full-fanout, but the scheduling
story differs: CQ switches pair the dedicated crosspoint memories with
per-output schedulers (longest queue first, or round robin) that decide
*locally* which crosspoint each output drains — see
:class:`repro.arch.schedulers.CrosspointScheduler`.  Slot retirement is
per-crosspoint: a failed slot shrinks exactly one crosspoint FIFO, as in
the statically partitioned hardware.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.core.buffer import SwitchBuffer
from repro.core.packet import Packet
from repro.errors import (
    BufferEmptyError,
    BufferFullError,
    ConfigurationError,
    FaultError,
    InvariantError,
)

__all__ = ["CrosspointBuffer"]


class CrosspointBuffer(SwitchBuffer):
    """One input's row of dedicated per-output crosspoint FIFOs."""

    kind = "CQ"
    lengths_are_live = True

    def __init__(self, capacity: int, num_outputs: int) -> None:
        super().__init__(capacity, num_outputs)
        if capacity % num_outputs != 0:
            raise ConfigurationError(
                f"CQ capacity {capacity} is not divisible by "
                f"{num_outputs} crosspoints"
            )
        self.crosspoint_capacity = capacity // num_outputs
        # Every crosspoint memory has its own read port.
        self.max_reads_per_cycle = num_outputs
        self._queues: list[deque[Packet]] = [deque() for _ in range(num_outputs)]
        self._used: list[int] = [0] * num_outputs
        # Packets per crosspoint, kept incrementally: the live register
        # file behind queue_lengths().
        self._counts: list[int] = [0] * num_outputs
        # Slots retired per crosspoint (dedicated memories mean a failed
        # slot shrinks exactly one crosspoint FIFO).
        self._crosspoint_retired: list[int] = [0] * num_outputs

    # -- write side ------------------------------------------------------

    def effective_crosspoint_capacity(self, destination: int) -> int:
        """Slots of one crosspoint FIFO still in service after retirement."""
        self._check_output(destination)
        return self.crosspoint_capacity - self._crosspoint_retired[destination]

    def can_accept(self, destination: int, size: int = 1) -> bool:
        self._check_output(destination)
        return (
            self._used[destination] + size
            <= self.effective_crosspoint_capacity(destination)
        )

    def push(self, packet: Packet, destination: int) -> None:
        self._check_output(destination)
        limit = self.effective_crosspoint_capacity(destination)
        if self._used[destination] + packet.size > limit:
            raise BufferFullError(
                f"{self.kind} crosspoint for output {destination} full "
                f"({self._used[destination]}/{limit})"
            )
        self._queues[destination].append(packet)
        self._used[destination] += packet.size
        self._counts[destination] += 1

    # -- read side -------------------------------------------------------

    def peek(self, destination: int) -> Packet | None:
        self._check_output(destination)
        queue = self._queues[destination]
        return queue[0] if queue else None

    def pop(self, destination: int) -> Packet:
        self._check_output(destination)
        queue = self._queues[destination]
        if not queue:
            raise BufferEmptyError(
                f"{self.kind} crosspoint for output {destination} empty"
            )
        packet = queue.popleft()
        self._used[destination] -= packet.size
        self._counts[destination] -= 1
        return packet

    def queue_length(self, destination: int) -> int:
        self._check_output(destination)
        return len(self._queues[destination])

    def queue_lengths(self) -> list[int]:
        # The live register file; callers treat it as read-only.
        return self._counts

    # -- graceful degradation ----------------------------------------------

    def retire_slot(self, crosspoint: int | None = None) -> int:
        """Retire one free slot; returns the crosspoint it came from.

        With ``crosspoint=None`` the slot is taken from the crosspoint
        with the most slots still in service (ties broken toward the
        lowest index), spreading hard failures evenly — the dedicated
        memories cannot lend a surviving slot to another output, so the
        failed crosspoint simply shrinks.
        """
        if crosspoint is None:
            crosspoint = max(
                range(self.num_outputs),
                key=lambda out: (
                    self.effective_crosspoint_capacity(out),
                    -out,
                ),
            )
        self._check_output(crosspoint)
        remaining = self.effective_crosspoint_capacity(crosspoint)
        if remaining - self._used[crosspoint] < 1:
            raise FaultError(
                f"crosspoint {crosspoint} has no free slot to retire"
            )
        self._crosspoint_retired[crosspoint] += 1
        self._retired_slots += 1
        return crosspoint

    # -- inspection --------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return sum(self._used)

    def crosspoint_occupancy(self, destination: int) -> int:
        """Slots used inside one crosspoint FIFO."""
        self._check_output(destination)
        return self._used[destination]

    def packets(self) -> list[Packet]:
        return [packet for queue in self._queues for packet in queue]

    # -- checkpoint serialization ------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        return {
            "queues": [
                [packet.to_state() for packet in queue]
                for queue in self._queues
            ],
            "crosspoint_retired": list(self._crosspoint_retired),
            "retired_slots": self._retired_slots,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        for destination, packet_states in enumerate(state["queues"]):
            queue = self._queues[destination]
            queue.clear()
            used = 0
            for packet_state in packet_states:
                packet = Packet.from_state(packet_state)
                queue.append(packet)
                used += packet.size
            # In-place updates: the switch's live-length view references
            # the _counts list.
            self._used[destination] = used
            self._counts[destination] = len(queue)
        self._crosspoint_retired[:] = state["crosspoint_retired"]
        self._retired_slots = state["retired_slots"]

    def canonical_state(self) -> tuple[Any, ...]:
        # Per-crosspoint queues in order, packets identified by size only
        # (ids are renumbered canonically by the model checker).
        return (
            self.kind,
            self.capacity,
            self.num_outputs,
            tuple(self._crosspoint_retired),
            tuple(
                tuple(packet.size for packet in queue)
                for queue in self._queues
            ),
        )

    def check_invariants(self) -> None:
        for destination, queue in enumerate(self._queues):
            if len(queue) != self._counts[destination]:
                raise InvariantError(
                    f"{self.kind} crosspoint {destination}: cached count "
                    f"{self._counts[destination]} != actual {len(queue)}"
                )
            total = sum(packet.size for packet in queue)
            if total != self._used[destination]:
                raise InvariantError(
                    f"{self.kind} crosspoint {destination}: occupancy "
                    f"register {self._used[destination]} != queued sizes "
                    f"{total}"
                )
            limit = self.effective_crosspoint_capacity(destination)
            if self._used[destination] > limit:
                raise InvariantError(
                    f"{self.kind} crosspoint {destination} holds "
                    f"{self._used[destination]} slots but only {limit} are "
                    f"in service"
                )

    def _check_output(self, destination: int) -> None:
        if not 0 <= destination < self.num_outputs:
            raise ConfigurationError(
                f"output {destination} out of range [0, {self.num_outputs})"
            )
