"""Distributed schedulers for the architecture zoo.

Two families, both implementing :class:`repro.switch.scheduler.Scheduler`:

* :class:`CrosspointScheduler` — the CQ switch's per-output arbiters
  (arXiv 1403.2098): every output independently drains one crosspoint
  per cycle, choosing by **longest queue first** (``lqf``) or **round
  robin** (``rr``).  There is no central sequential scan; outputs never
  contend because each picks from its own column of crosspoints.

* :class:`IterativeScheduler` — request–grant–accept matching in the
  iSLIP style (arXiv 1112.4214 lineage): inputs request every output
  they hold packets for; unmatched outputs grant to the nearest
  requesting input at/after a per-output grant pointer; inputs accept
  the nearest granting output at/after a per-input accept pointer.  The
  round repeats for a configurable number of iterations, and — the
  no-starvation rule — pointers advance only for matches made in the
  first iteration.

Both are deterministic functions of their pointer state and the offered
queues, checkpointable via ``snapshot_state``/``restore_state``, and
honour per-buffer read-port budgets (``max_reads_per_cycle``) so they
compose with any registered buffer architecture.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.core.buffer import SwitchBuffer
from repro.core.packet import Packet
from repro.errors import ConfigurationError
from repro.switch.scheduler import BlockedPredicate, Grant, Scheduler

__all__ = ["CrosspointScheduler", "IterativeScheduler"]

#: Selection policies accepted by :class:`CrosspointScheduler`.
CROSSPOINT_POLICIES = ("lqf", "rr")


class CrosspointScheduler(Scheduler):
    """Per-output crosspoint selection: longest queue first or round robin.

    Each output owns a round-robin pointer over the inputs.  Under
    ``lqf`` the output drains its longest candidate queue, breaking ties
    toward the first candidate at/after the pointer; under ``rr`` it
    simply takes the first candidate at/after the pointer.  The pointer
    advances past the granted input, so equal-length (or all-busy)
    crosspoints share service evenly.
    """

    def __init__(self, num_inputs: int, num_outputs: int, policy: str = "lqf") -> None:
        super().__init__(num_inputs, num_outputs)
        normalized = policy.lower()
        if normalized not in CROSSPOINT_POLICIES:
            raise ConfigurationError(
                f"unknown crosspoint policy {policy!r}; expected one of "
                f"{CROSSPOINT_POLICIES}"
            )
        self.policy = normalized
        # One round-robin pointer per output, over the inputs.
        self._pointers = [0] * num_outputs

    @property
    def kind(self) -> str:
        return self.policy

    # ------------------------------------------------------------------
    # Checkpoint serialization
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        return {"pointers": list(self._pointers)}

    def restore_state(self, state: dict[str, Any]) -> None:
        self._pointers[:] = state["pointers"]

    # ------------------------------------------------------------------
    # Arbitration
    # ------------------------------------------------------------------

    def arbitrate(
        self,
        buffers: Sequence[SwitchBuffer],
        blocked: BlockedPredicate,
        lengths: Sequence[list[int]] | None = None,
    ) -> list[Grant]:
        self._check_buffers(buffers)
        if lengths is None:
            lengths = [buffer.queue_lengths() for buffer in buffers]
        reads_left = [buffer.max_reads_per_cycle for buffer in buffers]
        grants: list[Grant] = []
        lqf = self.policy == "lqf"
        for output_port, pointer in enumerate(self._pointers):
            best_input = -1
            best_length = 0
            best_packet: Packet | None = None
            for offset in range(self.num_inputs):
                input_port = (pointer + offset) % self.num_inputs
                if reads_left[input_port] == 0:
                    continue
                length = lengths[input_port][output_port]
                if length == 0:
                    continue
                packet = buffers[input_port].peek(output_port)
                if packet is None:
                    continue
                if blocked(input_port, output_port, packet):
                    continue
                if not lqf:
                    # Round robin: first candidate in rotation order wins.
                    best_input, best_packet = input_port, packet
                    break
                # LQF: strictly-greater keeps the earliest candidate in
                # rotation order on ties.
                if length > best_length:
                    best_input = input_port
                    best_length = length
                    best_packet = packet
            if best_packet is None:
                continue
            grants.append(Grant(best_input, output_port, best_packet))
            reads_left[best_input] -= 1
            self._pointers[output_port] = (best_input + 1) % self.num_inputs
        return grants


class IterativeScheduler(Scheduler):
    """iSLIP-style iterative request–grant–accept matching.

    Parameters
    ----------
    num_inputs, num_outputs:
        Switch dimensions.
    iterations:
        Matching rounds per cycle.  One round already guarantees a
        maximal matching is *approached*; extra rounds fill holes left
        by accept-phase conflicts.
    """

    def __init__(self, num_inputs: int, num_outputs: int, iterations: int = 2) -> None:
        super().__init__(num_inputs, num_outputs)
        if iterations < 1:
            raise ConfigurationError(
                f"iterative scheduler needs at least 1 iteration, "
                f"got {iterations}"
            )
        self.iterations = iterations
        # Per-output grant pointer over inputs; per-input accept pointer
        # over outputs.  Desynchronizing these is what gives iSLIP its
        # 100%-throughput behaviour under uniform traffic.
        self._grant_pointers = [0] * num_outputs
        self._accept_pointers = [0] * num_inputs

    @property
    def kind(self) -> str:
        return f"islip{self.iterations}"

    # ------------------------------------------------------------------
    # Checkpoint serialization
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        return {
            "grant_pointers": list(self._grant_pointers),
            "accept_pointers": list(self._accept_pointers),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self._grant_pointers[:] = state["grant_pointers"]
        self._accept_pointers[:] = state["accept_pointers"]

    # ------------------------------------------------------------------
    # Arbitration
    # ------------------------------------------------------------------

    def arbitrate(
        self,
        buffers: Sequence[SwitchBuffer],
        blocked: BlockedPredicate,
        lengths: Sequence[list[int]] | None = None,
    ) -> list[Grant]:
        self._check_buffers(buffers)
        if lengths is None:
            lengths = [buffer.queue_lengths() for buffer in buffers]
        num_inputs = self.num_inputs
        num_outputs = self.num_outputs
        # Request phase, computed once: the head packet of every
        # non-empty, non-blocked queue.  Buffer state is constant during
        # arbitration, so requests only *disappear* as matches are made.
        heads: list[list[Packet | None]] = [
            [None] * num_outputs for _ in range(num_inputs)
        ]
        for input_port, buffer in enumerate(buffers):
            row = lengths[input_port]
            for output_port in range(num_outputs):
                if row[output_port] == 0:
                    continue
                packet = buffer.peek(output_port)
                if packet is None or blocked(input_port, output_port, packet):
                    continue
                heads[input_port][output_port] = packet
        reads_left = [buffer.max_reads_per_cycle for buffer in buffers]
        output_unmatched = [True] * num_outputs
        grants: list[Grant] = []
        for iteration in range(self.iterations):
            # Grant phase: every unmatched output offers its slot to the
            # nearest requesting input at/after its grant pointer.
            offers: list[list[int]] = [[] for _ in range(num_inputs)]
            for output_port in range(num_outputs):
                if not output_unmatched[output_port]:
                    continue
                pointer = self._grant_pointers[output_port]
                for offset in range(num_inputs):
                    input_port = (pointer + offset) % num_inputs
                    if (
                        reads_left[input_port] > 0
                        and heads[input_port][output_port] is not None
                    ):
                        offers[input_port].append(output_port)
                        break
            # Accept phase: every input with offers accepts the nearest
            # granting output at/after its accept pointer (one accept per
            # iteration; spare read ports pick up more in later rounds).
            matched_any = False
            for input_port in range(num_inputs):
                candidates = offers[input_port]
                if not candidates:
                    continue
                pointer = self._accept_pointers[input_port]
                accepted = min(
                    candidates,
                    key=lambda out: (out - pointer) % num_outputs,
                )
                packet = heads[input_port][accepted]
                if packet is None:  # pragma: no cover — offers imply a head
                    continue
                grants.append(Grant(input_port, accepted, packet))
                matched_any = True
                output_unmatched[accepted] = False
                reads_left[input_port] -= 1
                heads[input_port][accepted] = None
                # The iSLIP no-starvation rule: pointers move only for
                # first-iteration matches.
                if iteration == 0:
                    self._grant_pointers[accepted] = (
                        input_port + 1
                    ) % num_inputs
                    self._accept_pointers[input_port] = (
                        accepted + 1
                    ) % num_outputs
            if not matched_any:
                break
        return grants
