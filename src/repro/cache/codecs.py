"""Named, bit-exact encoders/decoders for cacheable result objects.

A cache blob is plain JSON; a *codec* maps a result object to that JSON
and back without losing a bit.  Codecs are looked up by name — the name
is part of the cache key, so changing an encoding can never mis-decode
an old blob (it simply misses).

The repository's cacheable results:

``simulation-result``
    :class:`~repro.network.metrics.SimulationResult` — the flat config
    echo plus the meters, whose Welford accumulators are stored as
    their exact state dicts (JSON round-trips Python floats exactly, and
    preserves the int extrema the determinism pins check).
``validation-report``
    :class:`~repro.markov.validation.ValidationReport` — a flat
    dataclass of primitives.
``chip-campaign``
    :class:`~repro.faults.campaign.ChipCampaignResult` — the closed-loop
    chip fault campaign's counters (flat primitives plus one str→int
    dict).
``json``
    The identity codec for results that are already JSON values (e.g.
    the slot-size sweep's fragmentation fractions).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import asdict, fields
from typing import Any

from repro.errors import ConfigurationError
from repro.network.metrics import Meters, SimulationResult

__all__ = ["decode_result", "encode_result", "known_codecs"]


def _encode_simulation_result(result: Any) -> Any:
    if not isinstance(result, SimulationResult):
        raise ConfigurationError(
            f"simulation-result codec cannot encode {type(result).__name__}"
        )
    blob = {
        f.name: getattr(result, f.name)
        for f in fields(result)
        if f.name != "meters"
    }
    blob["meters"] = result.meters.snapshot_state()
    return blob


def _decode_simulation_result(blob: Any) -> Any:
    state = dict(blob)
    meters_state = state.pop("meters")
    meters = Meters(num_ports=meters_state["num_ports"])
    meters.restore_state(meters_state)
    return SimulationResult(meters=meters, **state)


def _encode_validation_report(result: Any) -> Any:
    from repro.markov.validation import ValidationReport

    if not isinstance(result, ValidationReport):
        raise ConfigurationError(
            f"validation-report codec cannot encode {type(result).__name__}"
        )
    return asdict(result)


def _decode_validation_report(blob: Any) -> Any:
    from repro.markov.validation import ValidationReport

    return ValidationReport(**blob)


def _encode_chip_campaign(result: Any) -> Any:
    from repro.faults.campaign import ChipCampaignResult

    if not isinstance(result, ChipCampaignResult):
        raise ConfigurationError(
            f"chip-campaign codec cannot encode {type(result).__name__}"
        )
    return asdict(result)


def _decode_chip_campaign(blob: Any) -> Any:
    from repro.faults.campaign import ChipCampaignResult

    return ChipCampaignResult(**blob)


def _identity(value: Any) -> Any:
    return value


_CODECS: dict[str, tuple[Callable[[Any], Any], Callable[[Any], Any]]] = {
    "simulation-result": (_encode_simulation_result, _decode_simulation_result),
    "validation-report": (_encode_validation_report, _decode_validation_report),
    "chip-campaign": (_encode_chip_campaign, _decode_chip_campaign),
    "json": (_identity, _identity),
}


def known_codecs() -> tuple[str, ...]:
    """The registered codec names."""
    return tuple(_CODECS)


def _lookup(codec: str) -> tuple[Callable[[Any], Any], Callable[[Any], Any]]:
    try:
        return _CODECS[codec]
    except KeyError:
        raise ConfigurationError(
            f"unknown cache codec {codec!r}; expected one of {known_codecs()}"
        ) from None


def encode_result(codec: str, result: Any) -> Any:
    """Encode ``result`` into the JSON blob stored under ``codec``."""
    return _lookup(codec)[0](result)


def decode_result(codec: str, blob: Any) -> Any:
    """Decode a stored blob back into its result object, bit-exact."""
    return _lookup(codec)[1](blob)
