"""Process-wide cache activation shared by the runner and the mappers.

The experiment runner decides *whether* caching (and checkpointing) is
on; the parallel mapper decides *what* each unit of work looks like.
They meet here: :func:`~repro.experiments.runner.run_experiment` wraps
each experiment in :func:`activate`, and
:func:`~repro.perf.parallel.parallel_map` consults :func:`active` to
short-circuit hits and store misses.  Keeping the context ambient
(rather than threading a parameter through every experiment module)
means the individual experiments stay cache-oblivious — the figure/table
code is identical with and without a cache.

The context lives in a :class:`contextvars.ContextVar` rather than a
bare module global so that concurrent activations in different threads
— the simulation service runs experiments on worker threads while its
event loop keeps serving — see only their own context.  For the
single-threaded CLI paths the behaviour is unchanged.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any

from repro.cache.store import ResultCache

__all__ = ["CacheContext", "activate", "active"]


class CacheContext:
    """What the mapper needs to know while an experiment runs.

    Parameters
    ----------
    cache:
        The store, or ``None`` when only checkpointing is active.
    experiment:
        Suite-member name folded into every cache key.
    checkpoint_every:
        Periodic checkpoint cadence for each simulation, in cycles
        (``None`` disables checkpointing).
    checkpoint_dir:
        Directory for per-task checkpoint files.
    dispatcher:
        Optional work executor ``(fn, items) -> results`` that replaces
        the mapper's own process pool.  The simulation service installs
        its supervised worker pool here so that every grid point an
        experiment fans out is sharded across supervised workers —
        with heartbeats, deadlines and bounded retries — instead of an
        anonymous ``ProcessPoolExecutor``.
    backend:
        Forced simulation backend (``"reference"``/``"numpy"``) applied
        to every grid the experiment fans out, or ``None`` to honour
        the ambient ``REPRO_BACKEND`` preference.  Ambient for the same
        reason the cache is: the figure/table code stays
        backend-oblivious.
    """

    def __init__(
        self,
        cache: ResultCache | None,
        experiment: str,
        checkpoint_every: int | None = None,
        checkpoint_dir: str | Path | None = None,
        dispatcher: Callable[[Callable[[Any], Any], list[Any]], list[Any]]
        | None = None,
        backend: str | None = None,
    ) -> None:
        self.cache = cache
        self.experiment = experiment
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.dispatcher = dispatcher
        self.backend = backend

    @property
    def checkpointing(self) -> bool:
        """Whether per-task checkpoint/resume is configured."""
        return self.checkpoint_every is not None and self.checkpoint_dir is not None


_ACTIVE: ContextVar[CacheContext | None] = ContextVar(
    "repro_cache_context", default=None
)


def active() -> CacheContext | None:
    """The currently installed context (``None`` outside activation)."""
    return _ACTIVE.get()


@contextmanager
def activate(context: CacheContext) -> Iterator[CacheContext]:
    """Install ``context`` for the duration of one experiment.

    The store's index is flushed on the way out — one write per
    experiment, not per lookup.  Activations do not nest; the previous
    context is restored on exit so a nested runner is still safe.
    """
    token = _ACTIVE.set(context)
    try:
        yield context
    finally:
        _ACTIVE.reset(token)
        if context.cache is not None:
            context.cache.flush()
