"""Content-addressed cache for per-configuration simulation results.

A full experiment suite is a map over hundreds of independent
simulations, each a pure function of its configuration, seed and cycle
counts.  This package memoizes that function on disk: every unit of work
dispatched through :func:`repro.perf.parallel.parallel_map` is addressed
by a SHA-256 key over its experiment name, its canonical payload (the
full config dict plus cycle counts) and a fingerprint of the ``repro``
source tree, so a re-run of an unchanged suite collapses to index
lookups — and any edit to the simulator invalidates every key at once,
making a stale hit structurally impossible.

Layout on disk (default root ``.repro-cache/``)::

    .repro-cache/
        index.json              # schema, LRU clock, key -> entry metadata
        objects/ab/abcdef....json   # one JSON blob per cached result

The pieces:

* :mod:`repro.cache.keys` — canonical JSON, the source-tree fingerprint
  and the key derivation.
* :mod:`repro.cache.codecs` — named encoders/decoders turning result
  objects (``SimulationResult``, ``ValidationReport``, plain JSON
  values) into blobs and back, bit-exact.
* :mod:`repro.cache.store` — the on-disk store: index, blobs, LRU
  eviction, ``stats``/``clear``/``verify`` maintenance.
* :mod:`repro.cache.runtime` — the process-wide activation context that
  :func:`~repro.experiments.runner.run_experiment` installs and
  :func:`~repro.perf.parallel.parallel_map` consults.

Maintenance CLI: ``python -m repro.cache {stats,clear,verify}``.
"""

from __future__ import annotations

from repro.cache.codecs import decode_result, encode_result
from repro.cache.keys import cache_key, canonical_json, source_fingerprint
from repro.cache.runtime import CacheContext, activate, active
from repro.cache.store import CacheStats, ResultCache

__all__ = [
    "CacheContext",
    "CacheStats",
    "ResultCache",
    "activate",
    "active",
    "cache_key",
    "canonical_json",
    "decode_result",
    "encode_result",
    "source_fingerprint",
]
