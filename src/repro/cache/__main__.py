"""Maintenance CLI for the experiment result cache.

Usage::

    python -m repro.cache stats            # entry counts, bytes, breakdown
    python -m repro.cache clear            # drop every entry and blob
    python -m repro.cache verify           # check blobs against digests
    python -m repro.cache --cache-dir X ...

``verify`` exits non-zero when it finds (and drops) corrupt entries, so
CI can assert cache soundness.
"""

from __future__ import annotations

import argparse

from repro.cache.store import DEFAULT_CACHE_DIR, ResultCache


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cache",
        description="Inspect and maintain the experiment result cache.",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "command",
        choices=("stats", "clear", "verify"),
        help="maintenance operation to run",
    )
    args = parser.parse_args(argv)
    cache = ResultCache(args.cache_dir)
    if args.command == "stats":
        print(cache.stats().describe())
        return 0
    if args.command == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached result(s) from {cache.root}")
        return 0
    problems = cache.verify()
    if problems:
        for problem in problems:
            print(problem)
        print(f"dropped {len(problems)} corrupt entr(y/ies) from {cache.root}")
        return 1
    print(f"cache at {cache.root} is sound ({cache.stats().entries} entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
