"""Cache-key derivation: canonical JSON and the source-tree fingerprint.

A cache key must change whenever anything that could change the result
changes.  For a simulation that is (a) the work payload — experiment
name, full config dict, seed and cycle counts — and (b) the simulator
itself.  The payload is hashed as canonical JSON (sorted keys, no
whitespace, so dict ordering never matters); the simulator is hashed as
a fingerprint over every ``*.py`` file of the installed ``repro``
package, so *any* source edit — a new RNG draw, a reordered loop, a
changed default — invalidates the whole cache rather than serving
results the current code would not reproduce.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any

from repro.utils.digest import canonical_json, digest_json

__all__ = ["cache_key", "canonical_json", "source_fingerprint"]

#: Memoized fingerprint — the source tree cannot change under a running
#: process, so it is computed at most once per process.
_FINGERPRINT: str | None = None


def source_fingerprint() -> str:
    """SHA-256 over the full source of the installed ``repro`` package.

    Hashes the sorted ``relative-path:content-digest`` pairs of every
    ``*.py`` file under the package root, so renames, additions,
    deletions and edits all change the fingerprint.  Memoized for the
    process lifetime.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for source in sorted(package_root.rglob("*.py")):
            relative = source.relative_to(package_root).as_posix()
            content = hashlib.sha256(source.read_bytes()).hexdigest()
            digest.update(f"{relative}:{content}\n".encode())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def cache_key(experiment: str, codec: str, payload: Any) -> str:
    """Content address of one unit of work.

    ``experiment`` names the suite member the work belongs to, ``codec``
    the blob encoding (a decode-format change must miss, not
    mis-decode), and ``payload`` is the JSON-able work description —
    for a simulation, the full config dict plus warmup/measure cycle
    counts.  The source fingerprint is folded in so no key survives a
    code change.
    """
    document = {
        "experiment": experiment,
        "codec": codec,
        "payload": payload,
        "source": source_fingerprint(),
    }
    return digest_json(document)
