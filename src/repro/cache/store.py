"""The on-disk content-addressed store: index, blobs, eviction, checks.

One :class:`ResultCache` owns a directory::

    <root>/index.json               # {"schema": 1, "seq": N, "entries": {...}}
    <root>/objects/ab/abcdef....json

The index is the source of truth for *which* keys exist; blobs carry the
payloads.  Entries record their codec, experiment, size, a SHA-256 of
the blob text (so ``verify`` can detect corruption) and a logical
last-use sequence number driving LRU eviction — a monotonic counter, not
a wall-clock time, so cache behaviour is deterministic.

Writes are atomic (temp file + ``os.replace``) and the index is
persisted explicitly via :meth:`ResultCache.flush` — the experiment
runner flushes once per activation rather than once per lookup, keeping
warm re-runs at one index read and zero writes per hit.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.cache.codecs import decode_result, encode_result
from repro.errors import ConfigurationError
from repro.utils.digest import digest_text

__all__ = ["CacheStats", "ResultCache", "DEFAULT_CACHE_DIR"]

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: On-disk index schema version; any other version is treated as empty.
_SCHEMA = 1


@dataclass(frozen=True)
class CacheStats:
    """Summary of a cache directory for ``python -m repro.cache stats``."""

    root: str
    entries: int
    total_bytes: int
    hits: int
    misses: int
    experiments: dict[str, int]

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"cache root      {self.root}",
            f"entries         {self.entries}",
            f"stored bytes    {self.total_bytes}",
            f"session hits    {self.hits}",
            f"session misses  {self.misses}",
        ]
        for name in sorted(self.experiments):
            lines.append(f"  {name:24s} {self.experiments[name]}")
        return "\n".join(lines)


def _atomic_write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_name(f"{path.name}.tmp{os.getpid()}")
    scratch.write_text(text)
    os.replace(scratch, path)


class ResultCache:
    """Content-addressed result store with LRU eviction.

    Parameters
    ----------
    root:
        Cache directory (created lazily on the first ``put``).
    max_entries:
        Eviction threshold: inserting beyond this evicts the entries
        with the oldest logical last-use sequence.  Generous by default —
        the full experiment suite is a few hundred simulations.
    """

    def __init__(
        self,
        root: str | Path = DEFAULT_CACHE_DIR,
        max_entries: int = 4096,
    ) -> None:
        if max_entries < 1:
            raise ConfigurationError("cache max_entries must be >= 1")
        self.root = Path(root)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._seq = 0
        self._entries: dict[str, dict[str, Any]] = {}
        self._dirty = False
        self._load_index()

    # -- index persistence -------------------------------------------------

    @property
    def _index_path(self) -> Path:
        return self.root / "index.json"

    def _load_index(self) -> None:
        try:
            document = json.loads(self._index_path.read_text())
        except (OSError, ValueError):
            return
        if document.get("schema") != _SCHEMA:
            return
        self._seq = int(document.get("seq", 0))
        entries = document.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def flush(self) -> None:
        """Persist the index if any lookup or store changed it."""
        if not self._dirty:
            return
        document = {
            "schema": _SCHEMA,
            "seq": self._seq,
            "entries": self._entries,
        }
        _atomic_write(self._index_path, json.dumps(document))
        self._dirty = False

    # -- blob addressing ---------------------------------------------------

    def _blob_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    # -- lookups and stores ------------------------------------------------

    def get(self, key: str) -> Any | None:
        """The decoded result for ``key``, or ``None`` on a miss.

        A hit bumps the entry's logical last-use sequence (persisted at
        the next :meth:`flush`); a missing or unreadable blob demotes
        the entry to a miss and drops it from the index.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        try:
            blob = json.loads(self._blob_path(key).read_text())
        except (OSError, ValueError):
            del self._entries[key]
            self._dirty = True
            self.misses += 1
            return None
        self._seq += 1
        entry["seq"] = self._seq
        self._dirty = True
        self.hits += 1
        return decode_result(str(entry["codec"]), blob)

    def put(self, key: str, experiment: str, codec: str, result: Any) -> None:
        """Encode and store ``result`` under ``key``, evicting if full."""
        text = json.dumps(encode_result(codec, result))
        _atomic_write(self._blob_path(key), text)
        self._seq += 1
        self._entries[key] = {
            "codec": codec,
            "experiment": experiment,
            "seq": self._seq,
            "size": len(text),
            "sha256": digest_text(text),
        }
        self._dirty = True
        self._evict()

    def _evict(self) -> None:
        if len(self._entries) <= self.max_entries:
            return
        overflow = len(self._entries) - self.max_entries
        oldest = sorted(self._entries, key=lambda k: int(self._entries[k]["seq"]))
        for key in oldest[:overflow]:
            del self._entries[key]
            self._blob_path(key).unlink(missing_ok=True)

    # -- maintenance -------------------------------------------------------

    def stats(self) -> CacheStats:
        """Entry counts, stored bytes and per-experiment breakdown."""
        experiments: dict[str, int] = {}
        total = 0
        for entry in self._entries.values():
            name = str(entry["experiment"])
            experiments[name] = experiments.get(name, 0) + 1
            total += int(entry["size"])
        return CacheStats(
            root=str(self.root),
            entries=len(self._entries),
            total_bytes=total,
            hits=self.hits,
            misses=self.misses,
            experiments=experiments,
        )

    def clear(self) -> int:
        """Drop every entry and blob; returns the number removed."""
        removed = len(self._entries)
        for key in list(self._entries):
            self._blob_path(key).unlink(missing_ok=True)
        self._entries.clear()
        self._dirty = True
        self.flush()
        return removed

    def verify(self) -> list[str]:
        """Check every blob against its recorded digest.

        Returns a list of human-readable problem descriptions (empty
        means the cache is sound).  Corrupt or missing blobs are
        dropped from the index so subsequent lookups miss cleanly.
        """
        problems: list[str] = []
        for key in list(self._entries):
            entry = self._entries[key]
            path = self._blob_path(key)
            try:
                text = path.read_text()
            except OSError:
                problems.append(f"{key}: blob missing ({path})")
                del self._entries[key]
                self._dirty = True
                continue
            digest = digest_text(text)
            if digest != entry["sha256"]:
                problems.append(f"{key}: blob digest mismatch ({path})")
                del self._entries[key]
                self._dirty = True
        self.flush()
        return problems
