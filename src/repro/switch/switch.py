"""A small n×n packet switch assembled from the library's components.

One :class:`Switch` owns an input buffer per input port (any of the four
architectures), a :class:`~repro.switch.crossbar.Crossbar` sized for that
architecture's read capability, and a central
:class:`~repro.switch.arbiter.CrossbarArbiter`.  It operates at the
network-cycle granularity of the paper's Omega-network evaluation: in each
cycle the arbiter picks transmissions, the crossbar checks their legality,
and the simulator moves the granted packets downstream.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.core.buffer import SwitchBuffer
from repro.core.packet import Packet
from repro.errors import ConfigurationError
from repro.switch.arbiter import BlockedPredicate, Grant, Scheduler
from repro.switch.crossbar import Crossbar

if TYPE_CHECKING:  # import cycle: repro.analysis.sanitizer imports this module
    from repro.analysis.sanitizer import HardwareSanitizer

__all__ = ["Switch"]


class Switch:
    """An n×n switch with per-input buffers and a central arbiter.

    Parameters
    ----------
    switch_id:
        Identifier used in traces and error messages.
    num_inputs, num_outputs:
        Port counts (the paper uses 2×2 for the Markov analysis and 4×4
        for the Omega network).
    buffer_factory:
        ``factory(num_outputs) -> SwitchBuffer`` building one input
        buffer; see :func:`repro.core.registry.make_buffer_factory`.
    arbiter:
        The scheduling discipline: the paper's smart/dumb
        :class:`~repro.switch.arbiter.CrossbarArbiter` or any other
        :class:`~repro.switch.scheduler.Scheduler`.
    sanitizer:
        Optional :class:`~repro.analysis.sanitizer.HardwareSanitizer`;
        when given, every buffer this switch builds is wrapped in its
        instrumented subclass and labeled with the switch id.  The
        wrapping happens once, at construction — the switch's per-cycle
        code paths are identical with or without a sanitizer.
    """

    def __init__(
        self,
        switch_id: int,
        num_inputs: int,
        num_outputs: int,
        buffer_factory: Callable[[int], SwitchBuffer],
        arbiter: Scheduler,
        sanitizer: "HardwareSanitizer | None" = None,
    ) -> None:
        if arbiter.num_inputs != num_inputs or arbiter.num_outputs != num_outputs:
            raise ConfigurationError("arbiter dimensions do not match switch")
        if sanitizer is not None:
            buffer_factory = sanitizer.wrap_factory(buffer_factory)
        self.switch_id = switch_id
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.buffers: list[SwitchBuffer] = [
            buffer_factory(num_outputs) for _ in range(num_inputs)
        ]
        if sanitizer is not None:
            for port, buffer in enumerate(self.buffers):
                sanitizer.set_label(buffer, f"switch{switch_id}.in{port}")
        kinds = {buffer.kind for buffer in self.buffers}
        if len(kinds) != 1:
            raise ConfigurationError(f"mixed buffer kinds in one switch: {kinds}")
        self.buffer_kind = self.buffers[0].kind
        self.arbiter = arbiter
        self.crossbar = Crossbar(
            num_inputs,
            num_outputs,
            max_fanout=self.buffers[0].max_reads_per_cycle,
        )
        # Lifetime counters (reset by the simulator at end of warm-up).
        self.packets_received = 0
        self.packets_forwarded = 0
        # Occupied slots, maintained incrementally so the per-cycle
        # idle-switch check does not re-sum every buffer.
        self._occupancy = 0
        # Permanent queue-length views, when every buffer exposes a live
        # row: saves the arbiter a snapshot per switch per cycle.
        self._live_lengths = (
            [buffer.queue_lengths() for buffer in self.buffers]
            if all(buffer.lengths_are_live for buffer in self.buffers)
            else None
        )

    # ------------------------------------------------------------------
    # Receive side (called by the simulator when a packet arrives)
    # ------------------------------------------------------------------

    def can_accept(self, input_port: int, local_output: int, size: int = 1) -> bool:
        """Whether the buffer at ``input_port`` can take such a packet now."""
        if not 0 <= input_port < self.num_inputs:
            self._check_input(input_port)
        return self.buffers[input_port].can_accept(local_output, size)

    def receive(self, input_port: int, packet: Packet, local_output: int) -> None:
        """Store an arriving packet on its routed queue.

        Propagates :class:`~repro.errors.BufferFullError` so the caller can
        implement the discarding protocol; ``packets_received`` counts
        only packets actually stored.
        """
        if not 0 <= input_port < self.num_inputs:
            self._check_input(input_port)
        self.buffers[input_port].push(packet, local_output)
        self.packets_received += 1
        self._occupancy += packet.size

    # ------------------------------------------------------------------
    # Transmit side (one call per network cycle)
    # ------------------------------------------------------------------

    def plan_transmissions(self, blocked: BlockedPredicate) -> list[Grant]:
        """Arbitrate the crossbar for this cycle and validate connections."""
        grants = self.arbiter.arbitrate(self.buffers, blocked, self._live_lengths)
        self.crossbar.reset()
        for grant in grants:
            self.crossbar.connect(grant.input_port, grant.output_port)
        return grants

    def execute(self, grant: Grant) -> Packet:
        """Pop the granted packet out of its buffer."""
        packet = self.buffers[grant.input_port].pop(grant.output_port)
        if packet.packet_id != grant.packet.packet_id:
            raise ConfigurationError(
                f"switch {self.switch_id}: buffer state changed between "
                f"arbitration and execution"
            )
        self.packets_forwarded += 1
        self._occupancy -= packet.size
        return packet

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Total slots buffered across all input ports.

        Maintained incrementally by :meth:`receive`/:meth:`execute`;
        accurate as long as packets enter and leave through those methods.
        """
        return self._occupancy

    def reset_counters(self) -> None:
        """Zero the receive/forward counters (end of warm-up)."""
        self.packets_received = 0
        self.packets_forwarded = 0

    # ------------------------------------------------------------------
    # Checkpoint serialization
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        """Buffers, arbiter fairness state and counters, JSON-able.

        The crossbar carries no cross-cycle state (it is reset at every
        arbitration), so it is not captured.
        """
        return {
            "buffers": [buffer.snapshot_state() for buffer in self.buffers],
            "arbiter": self.arbiter.snapshot_state(),
            "packets_received": self.packets_received,
            "packets_forwarded": self.packets_forwarded,
            "occupancy": self._occupancy,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Overwrite the switch with a :meth:`snapshot_state` dict.

        Buffer restores mutate their internal length registers in place,
        which keeps this switch's live-length views (and the simulator's
        flow-control closures over the buffers) valid.
        """
        for buffer, buffer_state in zip(self.buffers, state["buffers"]):
            buffer.restore_state(buffer_state)
        self.arbiter.restore_state(state["arbiter"])
        self.packets_received = state["packets_received"]
        self.packets_forwarded = state["packets_forwarded"]
        self._occupancy = state["occupancy"]

    def _check_input(self, input_port: int) -> None:
        if not 0 <= input_port < self.num_inputs:
            raise ConfigurationError(
                f"input {input_port} out of range [0, {self.num_inputs})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Switch(id={self.switch_id}, {self.num_inputs}x{self.num_outputs}, "
            f"{self.buffer_kind}, occupancy={self.occupancy})"
        )
