"""The n×n switch: crossbar, central arbiter and flow-control protocols."""

from repro.switch.arbiter import ARBITER_KINDS, CrossbarArbiter, Grant, make_arbiter
from repro.switch.crossbar import Crossbar
from repro.switch.flow_control import Protocol
from repro.switch.switch import Switch

__all__ = [
    "ARBITER_KINDS",
    "Crossbar",
    "CrossbarArbiter",
    "Grant",
    "Protocol",
    "Switch",
    "make_arbiter",
]
