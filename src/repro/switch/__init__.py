"""The n×n switch: crossbar, schedulers and flow-control protocols."""

from repro.switch.arbiter import ARBITER_KINDS, CrossbarArbiter, Grant, make_arbiter
from repro.switch.crossbar import Crossbar
from repro.switch.flow_control import Protocol
from repro.switch.scheduler import (
    SCHEDULER_TYPES,
    Scheduler,
    register_scheduler,
    scheduler_factory,
    scheduler_kinds,
)
from repro.switch.switch import Switch

__all__ = [
    "ARBITER_KINDS",
    "Crossbar",
    "CrossbarArbiter",
    "Grant",
    "Protocol",
    "SCHEDULER_TYPES",
    "Scheduler",
    "Switch",
    "make_arbiter",
    "register_scheduler",
    "scheduler_factory",
    "scheduler_kinds",
]
