"""Central crossbar arbiters (Section 4.2 of the paper).

Each cycle the arbiter examines the input buffers one at a time, in a
priority order, "transmitting packets from the longest queue in the buffer
which was not blocked".  The paper evaluates two fairness schemes:

* **dumb** — plain round robin over buffers: the buffer examined first
  rotates every cycle whether or not it transmitted.
* **smart** — round robin that does not "count" a turn in which the
  priority buffer could not transmit (it stays first next cycle), plus a
  per-queue *stale count* used to age packets so no queue inside a buffer
  starves.

The arbiter is deliberately independent of the buffer architecture: it only
sees the :class:`~repro.core.buffer.SwitchBuffer` interface, a per-buffer
read-port budget, and a caller-supplied ``blocked`` predicate that embodies
the flow-control protocol (an output whose downstream buffer cannot accept
the candidate packet is "blocked" under the blocking protocol; nothing is
blocked under the discarding protocol).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.core.buffer import SwitchBuffer
from repro.core.packet import Packet
from repro.switch.scheduler import (
    BlockedPredicate,
    Grant,
    Scheduler,
    scheduler_factory,
)

__all__ = [
    "ARBITER_KINDS",
    "BlockedPredicate",
    "CrossbarArbiter",
    "Grant",
    "Scheduler",
    "make_arbiter",
]


class CrossbarArbiter(Scheduler):
    """Round-robin longest-queue arbiter with optional smart fairness.

    Parameters
    ----------
    num_inputs, num_outputs:
        Switch dimensions.
    smart:
        Enables the paper's "smart" behaviour: the priority pointer only
        advances past a buffer that actually transmitted, and stale counts
        break queue-length ties in favour of queues that waited longest.
    """

    def __init__(self, num_inputs: int, num_outputs: int, smart: bool) -> None:
        super().__init__(num_inputs, num_outputs)
        self.smart = smart
        self._priority = 0
        # stale[i][o]: cycles queue (i, o) has waited non-empty and unserved.
        self._stale = [[0] * num_outputs for _ in range(num_inputs)]
        # Examination order for each priority-pointer value, precomputed so
        # arbitrate() does not rebuild the rotation every cycle.
        self._orders = [
            [(priority + offset) % num_inputs for offset in range(num_inputs)]
            for priority in range(num_inputs)
        ]

    @property
    def kind(self) -> str:
        """Table name of the scheme ("smart" or "dumb")."""
        return "smart" if self.smart else "dumb"

    def stale_count(self, input_port: int, output_port: int) -> int:
        """Current stale count of one queue (for tests and metrics)."""
        return self._stale[input_port][output_port]

    # ------------------------------------------------------------------
    # Checkpoint serialization
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        """Fairness state (priority pointer + stale counts), JSON-able.

        ``_orders`` is derived purely from the dimensions and is rebuilt
        by construction, so only the mutable registers are captured.
        """
        return {
            "priority": self._priority,
            "stale": [list(row) for row in self._stale],
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Overwrite the fairness state with a :meth:`snapshot_state` dict."""
        self._priority = state["priority"]
        for row, saved in zip(self._stale, state["stale"]):
            row[:] = saved

    # ------------------------------------------------------------------
    # Arbitration
    # ------------------------------------------------------------------

    def arbitrate(
        self,
        buffers: Sequence[SwitchBuffer],
        blocked: BlockedPredicate,
        lengths: Sequence[list[int]] | None = None,
    ) -> list[Grant]:
        """Choose this cycle's transmissions.

        Buffers are examined starting at the priority pointer; each pass
        grants at most one packet per buffer; additional passes run while
        buffers still have unused read ports (this is what lets an SAFC
        buffer feed several outputs in one cycle).  Returns the grants and
        updates the fairness state.

        ``lengths`` optionally supplies the per-buffer queue-length rows
        (callers holding live views — see
        :attr:`~repro.core.buffer.SwitchBuffer.lengths_are_live` — pass
        them to skip the per-cycle snapshot).  Buffer state is constant
        during arbitration (pops happen at execution), so either form is
        a consistent snapshot.
        """
        self._check_buffers(buffers)
        if lengths is None:
            lengths = [buffer.queue_lengths() for buffer in buffers]
        grants: list[Grant] = []
        output_free = [True] * self.num_outputs
        reads_left = [buffer.max_reads_per_cycle for buffer in buffers]
        order = self._orders[self._priority]
        smart = self.smart
        stale = self._stale

        # Each pass grants at most one packet per buffer; further passes
        # only matter for buffers with spare read ports (SAFC).  The
        # longest-unblocked-queue scan is inlined here — this loop runs
        # once per switch per simulated cycle.
        outputs_left = self.num_outputs
        active_inputs = self.num_inputs
        made_progress = True
        while made_progress and outputs_left and active_inputs:
            made_progress = False
            for input_port in order:
                if reads_left[input_port] == 0:
                    continue
                buffer_lengths = lengths[input_port]
                stale_row = stale[input_port] if smart else None
                peek = buffers[input_port].peek
                # Longest unblocked queue; ties broken by stale count,
                # then toward the lowest output index (the scan order).
                best_length = 0
                best_stale = -1
                best_output = -1
                best_packet: Packet | None = None
                for output_port, length in enumerate(buffer_lengths):
                    # An empty queue offers nothing; skip before peeking.
                    if length == 0 or not output_free[output_port]:
                        continue
                    packet = peek(output_port)
                    if packet is None:
                        continue
                    if blocked(input_port, output_port, packet):
                        continue
                    queue_stale = (
                        stale_row[output_port] if stale_row is not None else 0
                    )
                    if length > best_length or (
                        length == best_length and queue_stale > best_stale
                    ):
                        best_length = length
                        best_stale = queue_stale
                        best_output = output_port
                        best_packet = packet
                if best_packet is None:
                    # Empty buffer, or nothing to offer this cycle.
                    reads_left[input_port] = 0
                    active_inputs -= 1
                    continue
                grants.append(Grant(input_port, best_output, best_packet))
                output_free[best_output] = False
                reads_left[input_port] -= 1
                if reads_left[input_port] == 0:
                    active_inputs -= 1
                outputs_left -= 1
                made_progress = True
                if not outputs_left:
                    break

        self._update_fairness(lengths, grants)
        return grants

    def _update_fairness(
        self, lengths: Sequence[list[int]], grants: list[Grant]
    ) -> None:
        """Advance the round-robin pointer and the stale counts."""
        # Age every waiting queue first, then zero the served ones: the
        # result is identical to checking membership cell by cell.
        for stale_row, buffer_lengths in zip(self._stale, lengths):
            for output_port, length in enumerate(buffer_lengths):
                if length > 0:
                    stale_row[output_port] += 1
                elif stale_row[output_port]:
                    stale_row[output_port] = 0
        served_inputs = set()
        for grant in grants:
            self._stale[grant.input_port][grant.output_port] = 0
            served_inputs.add(grant.input_port)
        if self.smart:
            # Do not burn the priority turn of a buffer that could not
            # transmit: advance only when the priority buffer was served.
            if self._priority in served_inputs:
                self._priority = (self._priority + 1) % self.num_inputs
        else:
            self._priority = (self._priority + 1) % self.num_inputs


#: The paper's own arbiter names; :func:`make_arbiter` additionally
#: accepts any discipline registered in
#: :data:`repro.switch.scheduler.SCHEDULER_TYPES` (the architecture zoo).
ARBITER_KINDS = ("smart", "dumb")


def make_arbiter(kind: str, num_inputs: int, num_outputs: int) -> Scheduler:
    """Construct a scheduler by table name.

    "smart" and "dumb" build the paper's :class:`CrossbarArbiter`; any
    other name is resolved through the extension-scheduler registry
    (which lazily imports ``repro.arch``).  Unknown names raise
    :class:`~repro.errors.ConfigurationError` listing every accepted
    kind.
    """
    normalized = kind.lower()
    if normalized in ARBITER_KINDS:
        return CrossbarArbiter(
            num_inputs, num_outputs, smart=(normalized == "smart")
        )
    return scheduler_factory(normalized)(num_inputs, num_outputs)
