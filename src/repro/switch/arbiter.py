"""Central crossbar arbiters (Section 4.2 of the paper).

Each cycle the arbiter examines the input buffers one at a time, in a
priority order, "transmitting packets from the longest queue in the buffer
which was not blocked".  The paper evaluates two fairness schemes:

* **dumb** — plain round robin over buffers: the buffer examined first
  rotates every cycle whether or not it transmitted.
* **smart** — round robin that does not "count" a turn in which the
  priority buffer could not transmit (it stays first next cycle), plus a
  per-queue *stale count* used to age packets so no queue inside a buffer
  starves.

The arbiter is deliberately independent of the buffer architecture: it only
sees the :class:`~repro.core.buffer.SwitchBuffer` interface, a per-buffer
read-port budget, and a caller-supplied ``blocked`` predicate that embodies
the flow-control protocol (an output whose downstream buffer cannot accept
the candidate packet is "blocked" under the blocking protocol; nothing is
blocked under the discarding protocol).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.buffer import SwitchBuffer
from repro.core.packet import Packet
from repro.errors import ConfigurationError

__all__ = ["Grant", "CrossbarArbiter", "make_arbiter", "ARBITER_KINDS"]

#: ``blocked(input_port, output_port, packet) -> bool`` — flow-control hook.
BlockedPredicate = Callable[[int, int, Packet], bool]


@dataclass(frozen=True)
class Grant:
    """One arbitration decision: transmit ``packet`` from input to output."""

    input_port: int
    output_port: int
    packet: Packet


class CrossbarArbiter:
    """Round-robin longest-queue arbiter with optional smart fairness.

    Parameters
    ----------
    num_inputs, num_outputs:
        Switch dimensions.
    smart:
        Enables the paper's "smart" behaviour: the priority pointer only
        advances past a buffer that actually transmitted, and stale counts
        break queue-length ties in favour of queues that waited longest.
    """

    def __init__(self, num_inputs: int, num_outputs: int, smart: bool) -> None:
        if num_inputs < 1 or num_outputs < 1:
            raise ConfigurationError("arbiter needs at least one input and output")
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.smart = smart
        self._priority = 0
        # stale[i][o]: cycles queue (i, o) has waited non-empty and unserved.
        self._stale = [[0] * num_outputs for _ in range(num_inputs)]

    @property
    def kind(self) -> str:
        """Table name of the scheme ("smart" or "dumb")."""
        return "smart" if self.smart else "dumb"

    def stale_count(self, input_port: int, output_port: int) -> int:
        """Current stale count of one queue (for tests and metrics)."""
        return self._stale[input_port][output_port]

    # ------------------------------------------------------------------
    # Arbitration
    # ------------------------------------------------------------------

    def arbitrate(
        self,
        buffers: Sequence[SwitchBuffer],
        blocked: BlockedPredicate,
    ) -> list[Grant]:
        """Choose this cycle's transmissions.

        Buffers are examined starting at the priority pointer; each pass
        grants at most one packet per buffer; additional passes run while
        buffers still have unused read ports (this is what lets an SAFC
        buffer feed several outputs in one cycle).  Returns the grants and
        updates the fairness state.
        """
        if len(buffers) != self.num_inputs:
            raise ConfigurationError(
                f"expected {self.num_inputs} buffers, got {len(buffers)}"
            )
        grants: list[Grant] = []
        output_free = [True] * self.num_outputs
        reads_left = [buffer.max_reads_per_cycle for buffer in buffers]
        order = [
            (self._priority + offset) % self.num_inputs
            for offset in range(self.num_inputs)
        ]

        # Each pass grants at most one packet per buffer; further passes
        # only matter for buffers with spare read ports (SAFC).
        outputs_left = self.num_outputs
        made_progress = True
        while made_progress and outputs_left:
            made_progress = False
            for input_port in order:
                if reads_left[input_port] == 0:
                    continue
                choice = self._pick_queue(
                    input_port, buffers[input_port], output_free, blocked
                )
                if choice is None:
                    reads_left[input_port] = 0  # nothing to offer this cycle
                    continue
                output_port, packet = choice
                grants.append(Grant(input_port, output_port, packet))
                output_free[output_port] = False
                reads_left[input_port] -= 1
                outputs_left -= 1
                made_progress = True
                if not outputs_left:
                    break

        self._update_fairness(buffers, grants)
        return grants

    def _pick_queue(
        self,
        input_port: int,
        buffer: SwitchBuffer,
        output_free: list[bool],
        blocked: BlockedPredicate,
    ) -> tuple[int, Packet] | None:
        """Longest unblocked queue of one buffer (stale-count tie-break)."""
        best: tuple[int, int, int] | None = None  # (length, stale, -output)
        best_output = -1
        best_packet: Packet | None = None
        for output_port in range(self.num_outputs):
            if not output_free[output_port]:
                continue
            packet = buffer.peek(output_port)
            if packet is None:
                continue
            if blocked(input_port, output_port, packet):
                continue
            length = buffer.queue_length(output_port)
            stale = self._stale[input_port][output_port] if self.smart else 0
            key = (length, stale, -output_port)
            if best is None or key > best:
                best = key
                best_output = output_port
                best_packet = packet
        if best_packet is None:
            return None
        return best_output, best_packet

    def _update_fairness(
        self, buffers: Sequence[SwitchBuffer], grants: list[Grant]
    ) -> None:
        """Advance the round-robin pointer and the stale counts."""
        served = {(grant.input_port, grant.output_port) for grant in grants}
        served_inputs = {grant.input_port for grant in grants}
        for input_port, buffer in enumerate(buffers):
            for output_port in range(self.num_outputs):
                if (input_port, output_port) in served:
                    self._stale[input_port][output_port] = 0
                elif buffer.queue_length(output_port) > 0:
                    self._stale[input_port][output_port] += 1
                else:
                    self._stale[input_port][output_port] = 0
        if self.smart:
            # Do not burn the priority turn of a buffer that could not
            # transmit: advance only when the priority buffer was served.
            if self._priority in served_inputs:
                self._priority = (self._priority + 1) % self.num_inputs
        else:
            self._priority = (self._priority + 1) % self.num_inputs


#: Names accepted by :func:`make_arbiter`.
ARBITER_KINDS = ("smart", "dumb")


def make_arbiter(kind: str, num_inputs: int, num_outputs: int) -> CrossbarArbiter:
    """Construct an arbiter by table name ("smart" or "dumb")."""
    normalized = kind.lower()
    if normalized not in ARBITER_KINDS:
        raise ConfigurationError(
            f"unknown arbiter kind {kind!r}; expected one of {ARBITER_KINDS}"
        )
    return CrossbarArbiter(num_inputs, num_outputs, smart=(normalized == "smart"))
