"""Connection fabric between input buffers and output ports.

The paper's switches differ not only in buffering but in the fabric the
buffers need: FIFO/SAMQ/DAMQ use one n×n crossbar (each input drives at
most one output per cycle), while SAFC replaces it with n separate n×1
switches so one input port can drive several outputs at once (Figure 1b).

:class:`Crossbar` models the connection state for one cycle and enforces
the corresponding legality rules, so an arbitration bug that would be a
short circuit in silicon raises :class:`~repro.errors.ProtocolError` here.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, ProtocolError

__all__ = ["Crossbar"]


class Crossbar:
    """Per-cycle connection state between inputs and outputs.

    Parameters
    ----------
    num_inputs, num_outputs:
        Fabric dimensions.
    max_fanout:
        How many outputs a single input may drive in one cycle: ``1`` for a
        plain crossbar, ``num_outputs`` for the SAFC arrangement of n×1
        switches.
    """

    def __init__(self, num_inputs: int, num_outputs: int, max_fanout: int = 1) -> None:
        if num_inputs < 1 or num_outputs < 1:
            raise ConfigurationError("crossbar needs at least one input and output")
        if max_fanout < 1:
            raise ConfigurationError("max_fanout must be at least 1")
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.max_fanout = max_fanout
        # source[o] is the input currently driving output o (or None).
        self._source: list[int | None] = [None] * num_outputs

    def connect(self, input_port: int, output_port: int) -> None:
        """Drive ``output_port`` from ``input_port`` for this cycle.

        Raises :class:`ProtocolError` when the output is already driven or
        the input exceeds its fan-out limit.
        """
        if not 0 <= input_port < self.num_inputs:
            raise ConfigurationError(f"input {input_port} out of range")
        if not 0 <= output_port < self.num_outputs:
            raise ConfigurationError(f"output {output_port} out of range")
        if self._source[output_port] is not None:
            raise ProtocolError(
                f"output {output_port} already driven by input "
                f"{self._source[output_port]}"
            )
        if self._source.count(input_port) >= self.max_fanout:
            raise ProtocolError(
                f"input {input_port} already drives {self.fanout(input_port)} "
                f"outputs (fan-out limit {self.max_fanout})"
            )
        self._source[output_port] = input_port

    def source(self, output_port: int) -> int | None:
        """The input currently driving ``output_port`` (``None`` if idle)."""
        return self._source[output_port]

    def fanout(self, input_port: int) -> int:
        """How many outputs ``input_port`` is currently driving."""
        return sum(1 for src in self._source if src == input_port)

    def connections(self) -> list[tuple[int, int]]:
        """All (input, output) pairs currently connected."""
        return [
            (src, out) for out, src in enumerate(self._source) if src is not None
        ]

    def is_output_free(self, output_port: int) -> bool:
        """True when no input drives ``output_port`` this cycle."""
        return self._source[output_port] is None

    def reset(self) -> None:
        """Clear every connection (start of a new cycle)."""
        self._source = [None] * self.num_outputs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Crossbar({self.connections()})"
