"""Flow-control protocols of the evaluation (Section 4).

The paper evaluates every buffer architecture under two protocols:

* **discarding** — a packet that attempts to enter a full buffer is
  dropped (and counted); nothing upstream is ever stalled.
* **blocking** — the transmitter is prevented from sending into a full
  buffer; the packet stays where it is and competes again next cycle.

For the statically partitioned buffers (SAMQ/SAFC) "full" is a property of
the *destination queue* the packet will join downstream, which is only
knowable by pre-routing the packet — the very complication the paper holds
against those designs (Section 2).  The simulator grants them that
idealized knowledge so the comparison is, if anything, generous to the
static designs; :mod:`DESIGN.md` records this choice.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError

__all__ = ["Protocol"]


class Protocol(enum.Enum):
    """What a switch does when a packet meets a full downstream buffer."""

    DISCARDING = "discarding"
    BLOCKING = "blocking"

    @classmethod
    def from_name(cls, name: str) -> "Protocol":
        """Parse a protocol by name, case-insensitively."""
        try:
            return cls(name.lower())
        except ValueError:
            raise ConfigurationError(
                f"unknown protocol {name!r}; expected 'discarding' or 'blocking'"
            ) from None

    def __str__(self) -> str:
        return self.value
