"""Scheduler abstraction for the crossbar datapath.

The paper's central :class:`~repro.switch.arbiter.CrossbarArbiter` is one
point in a much larger design space: the descendant literature replaces the
single sequential scan with per-output schedulers (crosspoint-queued
switches, arXiv 1403.2098) and with distributed iterative matching
(request--grant--accept rounds, arXiv 1112.4214).  This module defines the
interface all of them share so that :class:`~repro.switch.switch.Switch`
and the omega simulator can drive any scheduling discipline:

* :class:`Grant` / :data:`BlockedPredicate` — the vocabulary of one
  arbitration cycle (moved here from ``repro.switch.arbiter``, which
  re-exports them for compatibility).
* :class:`Scheduler` — the abstract base class: ``arbitrate()`` plus the
  checkpoint pair ``snapshot_state()``/``restore_state()``.
* :data:`SCHEDULER_TYPES` / :func:`register_scheduler` /
  :func:`scheduler_factory` — a registry that extension packages (the
  architecture zoo in ``repro.arch``) populate with additional
  disciplines, looked up lazily so importing ``repro.switch`` alone keeps
  the paper-exact surface.

A :class:`Scheduler` must uphold the same contract the arbiter does: at
most one grant per output per cycle, at most ``max_reads_per_cycle``
grants per input buffer, only non-blocked head packets, and deterministic
decisions given its snapshot state and the offered queues.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from typing import Any, NamedTuple

from repro.core.buffer import SwitchBuffer
from repro.core.packet import Packet
from repro.errors import ConfigurationError

__all__ = [
    "BlockedPredicate",
    "Grant",
    "SCHEDULER_TYPES",
    "Scheduler",
    "SchedulerFactory",
    "register_scheduler",
    "scheduler_factory",
    "scheduler_kinds",
]

#: ``blocked(input_port, output_port, packet) -> bool`` — flow-control hook.
BlockedPredicate = Callable[[int, int, Packet], bool]


class Grant(NamedTuple):
    """One arbitration decision: transmit ``packet`` from input to output.

    A named tuple rather than a (frozen) dataclass: grants are created on
    the simulator's innermost loop, and tuple construction is markedly
    cheaper than frozen-dataclass field assignment.
    """

    input_port: int
    output_port: int
    packet: Packet


class Scheduler(ABC):
    """Abstract crossbar scheduler: picks one matching per cycle.

    Subclasses implement :meth:`arbitrate` and the checkpoint pair; the
    base class owns dimension validation so every discipline rejects
    degenerate switches with the same message.
    """

    def __init__(self, num_inputs: int, num_outputs: int) -> None:
        if num_inputs < 1 or num_outputs < 1:
            raise ConfigurationError("arbiter needs at least one input and output")
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs

    @property
    @abstractmethod
    def kind(self) -> str:
        """Registry name of the scheduling discipline."""

    @abstractmethod
    def arbitrate(
        self,
        buffers: Sequence[SwitchBuffer],
        blocked: BlockedPredicate,
        lengths: Sequence[list[int]] | None = None,
    ) -> list[Grant]:
        """Choose this cycle's transmissions and update fairness state."""

    @abstractmethod
    def snapshot_state(self) -> dict[str, Any]:
        """JSON-able fairness state for checkpointing."""

    @abstractmethod
    def restore_state(self, state: dict[str, Any]) -> None:
        """Overwrite the fairness state with a :meth:`snapshot_state` dict."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _check_buffers(self, buffers: Sequence[SwitchBuffer]) -> None:
        """Reject a buffer row that does not match the input count."""
        if len(buffers) != self.num_inputs:
            raise ConfigurationError(
                f"expected {self.num_inputs} buffers, got {len(buffers)}"
            )


#: ``factory(num_inputs, num_outputs) -> Scheduler``.
SchedulerFactory = Callable[[int, int], "Scheduler"]

#: Extension schedulers by lowercase kind name.  The paper's own
#: "smart"/"dumb" arbiters are *not* listed here — ``make_arbiter``
#: handles them directly so the paper surface has no registry hop.
SCHEDULER_TYPES: dict[str, SchedulerFactory] = {}


def register_scheduler(kind: str, factory: SchedulerFactory) -> None:
    """Register an extension scheduling discipline under ``kind``.

    Re-registering the same name is allowed (module re-imports are
    idempotent); names collide case-insensitively with the built-in
    arbiter kinds, which stay reserved.
    """
    normalized = kind.lower()
    if normalized in ("smart", "dumb"):
        raise ConfigurationError(
            f"scheduler kind {kind!r} is reserved for the paper's arbiters"
        )
    SCHEDULER_TYPES[normalized] = factory


def scheduler_kinds() -> tuple[str, ...]:
    """All accepted scheduler names (built-in arbiters + extensions)."""
    _load_extensions()
    return ("smart", "dumb", *sorted(SCHEDULER_TYPES))


def _load_extensions() -> None:
    """Pull in the architecture zoo's registrations, if available.

    Importing ``repro.arch`` has the side effect of populating
    :data:`SCHEDULER_TYPES`.  The import is lazy so the paper-exact
    modules never pay for (or depend on) the extension package.
    """
    import repro.arch  # noqa: F401  (imported for its registrations)


def scheduler_factory(kind: str) -> SchedulerFactory:
    """Look up an extension scheduler factory by name.

    Unknown names trigger a lazy load of ``repro.arch`` (whose import
    registers the zoo's schedulers) before failing with a message that
    lists every accepted kind.
    """
    normalized = kind.lower()
    if normalized not in SCHEDULER_TYPES:
        _load_extensions()
    try:
        return SCHEDULER_TYPES[normalized]
    except KeyError:
        raise ConfigurationError(
            f"unknown arbiter kind {kind!r}; expected one of {scheduler_kinds()}"
        ) from None
