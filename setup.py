"""Setuptools shim.

The metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e . --no-use-pep517`` works on environments whose
setuptools predates PEP 660 editable installs (no ``wheel`` package).
"""

from setuptools import setup

setup()
